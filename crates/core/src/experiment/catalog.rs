//! The paper's 17 registered experiments: every figure and table of the
//! evaluation, ported onto the [`Experiment`] trait.
//!
//! Each experiment decomposes into the independent items its original
//! serial per-figure loop iterated over (per-configuration, per-size,
//! per-topology, per-fraction, …), and every item derives its randomness
//! from `(scale, seed, item)` exactly as the legacy serial loop did — so
//! the datasets reproduce the historical outputs byte-for-byte (the golden
//! TSVs under `crates/bench/testdata/` enforce it), and any shard partition
//! merges back to the single-process dataset.
//!
//! Topology construction goes through [`TopoSpec`] strings resolved by the
//! generator registry (`jellyfish_topology::spec`): topology-parameterized
//! experiments carry the spec on their [`WorkItem`]s and resolve it with
//! [`RunCtx::spec_snapshot`], recording the spec string in the dataset's
//! metadata. The seeds each spec is built with are chosen to reproduce the
//! legacy constructors bit-for-bit (`crates/core/tests/spec_equivalence.rs`
//! enforces that).

use super::{Dataset, Experiment, ItemResult, RunCtx, Snapshot, WorkItem};
use crate::cabling::two_layer_jellyfish;
use crate::capacity::jellyfish_with_servers;
use crate::figures::{Scale, Series};
use crate::legup::{run_expansion_comparison, ExpansionScenario};
use crate::metrics::jain_fairness_index;
use jellyfish_flow::bisection::{
    fattree_normalized_bisection, jellyfish_full_bisection_cost, jellyfish_normalized_bisection,
};
use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions};
use jellyfish_routing::path_table::{PathTable, RoutingScheme};
use jellyfish_sim::engine::SimConfig;
use jellyfish_sim::engine::Simulator;
use jellyfish_sim::fluid::max_min_fair_allocation;
use jellyfish_sim::net::{LinkParams, Network};
use jellyfish_sim::routing::{PathPolicy, TransportPolicy};
use jellyfish_sim::workload::build_connections;
use jellyfish_topology::degree_diameter::FIGURE3_CONFIGS;
use jellyfish_topology::expansion::grow_schedule;
use jellyfish_topology::fattree::FatTree;
use jellyfish_topology::properties::{
    fraction_of_server_pairs_within, path_length_stats, server_pair_histogram_csr,
};
use jellyfish_topology::spec::ScenarioTransform;
use jellyfish_topology::{TopoSpec, Topology};
use jellyfish_traffic::{ServerMap, TrafficMatrix, TrafficSpec};
use rayon::prelude::*;
use std::sync::Arc;

/// `ThroughputOptions` shared by the "do not stop at full" sweeps.
pub(crate) fn sweep_opts() -> ThroughputOptions {
    ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() }
}

/// The paper's random-permutation workload, built through the traffic-spec
/// registry. The `permutation` generator delegates to the eager constructor,
/// so this is byte-identical to `TrafficMatrix::random_permutation` — the
/// registry is the single construction path (`crates/bench/tests/`
/// `golden_experiments.rs` enforces the bytes).
pub(crate) fn permutation_matrix(servers: &ServerMap, seed: u64) -> TrafficMatrix {
    TrafficSpec::permutation()
        .matrix(servers, seed)
        .expect("the permutation workload builds on any server map")
}

/// Spec for the paper's homogeneous Jellyfish `RRG(switches, ports, degree)`.
pub(crate) fn jellyfish_spec(switches: usize, ports: usize, degree: usize) -> TopoSpec {
    TopoSpec::new("jellyfish")
        .with_param("switches", switches)
        .with_param("ports", ports)
        .with_param("degree", degree)
}

/// Spec for Jellyfish with `total` servers spread evenly over `switches`
/// switches of `ports` ports (the same-equipment comparisons; equals the
/// legacy `jellyfish_with_servers`).
pub(crate) fn jellyfish_total_spec(switches: usize, ports: usize, total: usize) -> TopoSpec {
    TopoSpec::new("jellyfish")
        .with_param("switches", switches)
        .with_param("ports", ports)
        .with_param("servers_total", total)
}

/// Spec for the k-ary fat-tree.
pub(crate) fn fattree_spec(k: usize) -> TopoSpec {
    TopoSpec::new("fattree").with_param("k", k)
}

/// Resolves a work item's spec against the run context (build seed = the
/// seed the legacy constructor used) and records the spec string in `ds`.
fn resolve(ctx: &RunCtx, item: &WorkItem, seed: u64, ds: &mut Dataset) -> Arc<Snapshot> {
    let spec = item.spec();
    let snap = ctx
        .spec_snapshot(spec, seed)
        .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label));
    ds.push_meta(format!("topo:{}", item.label), spec.to_string());
    snap
}

// ------------------------------------------------------------------ fig1c

/// Figure 1(c): CDF of server-pair path lengths, Jellyfish vs the
/// same-equipment fat-tree.
pub struct Fig1c;

impl Experiment for Fig1c {
    fn name(&self) -> &'static str {
        "fig1c"
    }

    fn describe(&self) -> &'static str {
        "Path length CDF: Jellyfish vs same-equipment fat-tree (Figure 1c)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let k = ctx.scale.pick(14, 10, 6);
        let servers = FatTree::servers_for_port_count(k);
        let switches = FatTree::switches_for_port_count(k);
        vec![
            WorkItem::with_spec(0, "jellyfish", jellyfish_total_spec(switches, k, servers)),
            WorkItem::with_spec(1, "fat-tree", fattree_spec(k)),
        ]
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let label = if item.index == 0 { "Jellyfish" } else { "Fat-tree" };
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, ctx.seed, &mut ds);
        let hist = server_pair_histogram_csr(&snap.topology, &snap.csr);
        let points = (2..=hist.len().max(7))
            .map(|h| (h as f64, fraction_of_server_pairs_within(&hist, h)))
            .collect();
        ds.series.push(Series::new(label, points));
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ fig2a

/// The `(N, k)` points of Figure 2(a).
const FIG2A_CONFIGS: [(usize, usize); 3] = [(720, 24), (1280, 32), (2880, 48)];

/// Figure 2(a): normalized bisection bandwidth versus servers at equal cost.
/// Closed-form; `scale` and `seed` are accepted for API uniformity but
/// do not affect the result.
pub struct Fig2a;

impl Experiment for Fig2a {
    fn name(&self) -> &'static str {
        "fig2a"
    }

    fn describe(&self) -> &'static str {
        "Bisection bandwidth vs server count at equal cost (Figure 2a)"
    }

    fn work_items(&self, _ctx: &RunCtx) -> Vec<WorkItem> {
        FIG2A_CONFIGS
            .iter()
            .enumerate()
            .map(|(i, (n, k))| WorkItem::new(i, format!("N={n} k={k}")))
            .collect()
    }

    fn run_item(&self, _ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (n, k) = FIG2A_CONFIGS[item.index];
        let mut points = Vec::new();
        for servers_per_switch in 1..k {
            let r = k - servers_per_switch;
            let servers = n * servers_per_switch;
            let norm = jellyfish_normalized_bisection(n, k, r);
            if norm.is_finite() {
                points.push((servers as f64, norm));
            }
        }
        let mut ds = Dataset::new();
        ds.series.push(Series::new(format!("Jellyfish; N={n}; k={k}"), points));
        ds.series.push(Series::new(
            format!("Fat-tree; N={n}; k={k}"),
            vec![(FatTree::servers_for_port_count(k) as f64, fattree_normalized_bisection(k))],
        ));
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ fig2b

/// The port counts of Figure 2(b).
const FIG2B_PORTS: [usize; 4] = [24, 32, 48, 64];

/// Label of the combined fat-tree series of Figure 2(b).
pub(crate) const FIG2B_FATTREE_LABEL: &str = "Fat-tree; {24,32,48,64} ports";

/// Figure 2(b): equipment cost versus servers at full bisection bandwidth.
/// Closed-form; `scale` and `seed` do not affect the result.
pub struct Fig2b;

impl Experiment for Fig2b {
    fn name(&self) -> &'static str {
        "fig2b"
    }

    fn describe(&self) -> &'static str {
        "Equipment cost vs servers at full bisection bandwidth (Figure 2b)"
    }

    fn work_items(&self, _ctx: &RunCtx) -> Vec<WorkItem> {
        FIG2B_PORTS
            .iter()
            .enumerate()
            .map(|(i, k)| WorkItem::new(i, format!("{k} ports")))
            .collect()
    }

    fn run_item(&self, _ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let k = FIG2B_PORTS[item.index];
        let mut ds = Dataset::new();
        let mut jf_points = Vec::new();
        for servers in (10_000..=80_000).step_by(10_000) {
            if let Some((ports, _)) = jellyfish_full_bisection_cost(servers, k) {
                jf_points.push((servers as f64, ports as f64));
            }
        }
        ds.series.push(Series::new(format!("Jellyfish; {k} ports"), jf_points));
        ds.push_point(
            FIG2B_FATTREE_LABEL,
            FatTree::servers_for_port_count(k) as f64,
            FatTree::ports_for_port_count(k) as f64,
        );
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ fig2c

fn fig2c_port_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![6, 8, 10, 12, 14],
        Scale::Laptop => vec![6, 8, 10],
        Scale::Tiny => vec![4, 6],
    }
}

/// Figure 2(c): servers supported at full capacity versus equipment cost.
pub struct Fig2c;

impl Experiment for Fig2c {
    fn name(&self) -> &'static str {
        "fig2c"
    }

    fn describe(&self) -> &'static str {
        "Servers at full capacity vs equipment (optimal routing, Figure 2c)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig2c_port_counts(ctx.scale)
            .into_iter()
            .enumerate()
            .map(|(i, k)| WorkItem::new(i, format!("k={k}")))
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let k = fig2c_port_counts(ctx.scale)[item.index];
        let switches = FatTree::switches_for_port_count(k);
        let ports = FatTree::ports_for_port_count(k);
        let ft_servers = FatTree::servers_for_port_count(k);
        // Binary search servers for the same equipment.
        let opts = crate::capacity::CapacitySearchOptions {
            probe_samples: if ctx.scale == Scale::Paper { 3 } else { 1 },
            verify_samples: if ctx.scale == Scale::Paper { 10 } else { 2 },
            throughput: ThroughputOptions::default(),
            seed: ctx.seed,
        };
        let result = crate::capacity::servers_at_full_throughput(switches, k, opts);
        let mut ds = Dataset::new();
        ds.push_point("Jellyfish (Optimal routing)", ports as f64, result.servers as f64);
        ds.push_point("Fat-tree (Optimal routing)", ports as f64, ft_servers as f64);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig3

fn fig3_configs(scale: Scale) -> Vec<(usize, usize, usize)> {
    match scale {
        Scale::Paper => FIGURE3_CONFIGS.to_vec(),
        Scale::Laptop => FIGURE3_CONFIGS[..5].to_vec(),
        Scale::Tiny => vec![(20, 6, 4), (24, 8, 5)],
    }
}

/// Figure 3: Jellyfish versus the best-known degree-diameter graphs.
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn describe(&self) -> &'static str {
        "Throughput vs best-known degree-diameter graphs (Figure 3)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig3_configs(ctx.scale)
            .into_iter()
            .enumerate()
            .map(|(i, (n, ports, degree))| {
                WorkItem::new(i, format!("n={n} ports={ports} degree={degree}"))
            })
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let i = item.index;
        let (n, ports, degree) = fig3_configs(ctx.scale)[i];
        let seed = ctx.seed;
        // Attach servers so the degree-diameter graph is *not* at full
        // bisection (the paper chooses server counts that keep the
        // benchmark below saturation so its full capacity is visible).
        let servers_per_switch = (ports - degree).min(degree / 2).max(1);
        let dd_spec = TopoSpec::new("dd")
            .with_param("n", n)
            .with_param("ports", ports)
            .with_param("degree", degree)
            .with_param("servers", servers_per_switch);
        let jf_spec = jellyfish_spec(n, ports, degree).with_param("servers", servers_per_switch);
        let opts = sweep_opts();
        let mut ds = Dataset::new();
        // The benchmark builds with the run seed, Jellyfish with the legacy
        // `figure3_pair` derivation (seed ^ 0xF00D).
        for (label, spec, build_seed) in [
            ("Best-known Degree-Diameter Graph", &dd_spec, seed),
            ("Jellyfish", &jf_spec, seed ^ 0xF00D),
        ] {
            let snap = ctx
                .spec_snapshot(spec, build_seed)
                .unwrap_or_else(|e| panic!("fig3: cannot build '{spec}': {e}"));
            ds.push_meta(format!("topo:{label} #{i}"), spec.to_string());
            let servers = ServerMap::new(&snap.topology);
            let tm = permutation_matrix(&servers, seed ^ i as u64);
            let r = normalized_throughput(&snap.topology, &servers, &tm, opts);
            ds.push_point(label, i as f64, r.normalized);
        }
        ItemResult::new(i, ds)
    }
}

// ------------------------------------------------------------------- fig4

/// The SWDC variants Figure 4 compares against, with their specs.
fn fig4_axis(scale: Scale) -> Vec<(&'static str, TopoSpec)> {
    let nodes = scale.pick(484, 100, 36);
    let hex_nodes = scale.pick(450, 100, 36);
    let swdc = |lattice: &str, n: usize| {
        TopoSpec::new("swdc")
            .with_param("lattice", lattice)
            .with_param("n", n)
            .with_param("servers", 2)
    };
    vec![
        ("Jellyfish", jellyfish_spec(nodes, 8, 6).with_param("servers", 2)),
        ("Small World Ring", swdc("ring", nodes)),
        ("Small World 2D-Torus", swdc("torus2d", nodes)),
        ("Small World 3D-Hex-Torus", swdc("hex3d", hex_nodes)),
    ]
}

/// Figure 4: Jellyfish versus the three SWDC variants at equal equipment.
pub struct Fig4;

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn describe(&self) -> &'static str {
        "Throughput vs small-world datacenter variants (Figure 4)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig4_axis(ctx.scale)
            .into_iter()
            .enumerate()
            .map(|(i, (label, spec))| WorkItem::with_spec(i, label, spec))
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let seed = ctx.seed;
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, seed, &mut ds);
        let servers = ServerMap::new(&snap.topology);
        let tm = permutation_matrix(&servers, seed ^ 0xF4);
        let r = normalized_throughput(&snap.topology, &servers, &tm, sweep_opts());
        ds.push_cell(&item.label, r.normalized);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig5

fn fig5_params(scale: Scale) -> (usize, usize, Vec<usize>) {
    let (ports, degree) = match scale {
        Scale::Paper => (48usize, 36usize),
        Scale::Laptop => (24, 18),
        Scale::Tiny => (12, 9),
    };
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![100, 400, 800, 1600, 2400, 3200],
        Scale::Laptop => vec![50, 100, 200, 400],
        Scale::Tiny => vec![20, 40],
    };
    (ports, degree, sizes)
}

/// Figure 5: mean path length and diameter versus size, from-scratch versus
/// incrementally expanded.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn describe(&self) -> &'static str {
        "Path length and diameter vs size, scratch vs expanded (Figure 5)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let (ports, degree, sizes) = fig5_params(ctx.scale);
        let mut items: Vec<WorkItem> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                WorkItem::with_spec(i, format!("scratch n={n}"), jellyfish_spec(n, ports, degree))
            })
            .collect();
        // Growth is inherently sequential: the whole expanded arc is one item.
        items.push(WorkItem::new(sizes.len(), "expanded growth arc"));
        items
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (ports, degree, sizes) = fig5_params(ctx.scale);
        let servers_per = ports - degree;
        let seed = ctx.seed;
        let mut ds = Dataset::new();
        if item.index < sizes.len() {
            let snap = resolve(ctx, item, seed, &mut ds);
            let stats = path_length_stats(snap.topology.graph());
            let x = (sizes[item.index] * servers_per) as f64;
            ds.push_point("Jellyfish; Mean", x, stats.mean);
            ds.push_point("Jellyfish; Diameter", x, stats.diameter as f64);
        } else {
            // Incremental: grow from the smallest size to the largest in steps.
            let first = sizes[0];
            let last = *sizes.last().unwrap();
            let step = ((last - first) / (sizes.len().max(2) - 1)).max(1);
            let stages = grow_schedule(first, last, step, ports, degree, seed ^ 0xE).unwrap();
            for stage in &stages {
                let stats = path_length_stats(stage.graph());
                let x = stage.total_servers() as f64;
                ds.push_point("Expanded Jellyfish; Mean", x, stats.mean);
                ds.push_point("Expanded Jellyfish; Diameter", x, stats.diameter as f64);
            }
        }
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig6

fn fig6_schedule(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (20usize, 160usize, 20usize),
        Scale::Laptop => (20, 80, 20),
        Scale::Tiny => (10, 30, 10),
    }
}

/// Figure 6: incrementally grown versus from-scratch throughput.
pub struct Fig6;

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn describe(&self) -> &'static str {
        "Incremental growth vs from-scratch throughput (Figure 6)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let (start, end, step) = fig6_schedule(ctx.scale);
        let stages = 1 + (end - start).div_ceil(step);
        (0..stages).map(|i| WorkItem::new(i, format!("stage {i}"))).collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (start, end, step) = fig6_schedule(ctx.scale);
        let seed = ctx.seed;
        // Growing the schedule is cheap (topology construction only); the
        // throughput evaluations below dominate, so each item regrows the
        // arc and evaluates its own stage.
        let stages = grow_schedule(start, end, step, 12, 8, seed).unwrap();
        let stage = &stages[item.index];
        let opts = sweep_opts();
        let servers = ServerMap::new(stage);
        let tm = permutation_matrix(&servers, seed ^ stage.num_switches() as u64);
        let r = normalized_throughput(stage, &servers, &tm, opts);

        let fresh_spec = jellyfish_spec(stage.num_switches(), 12, 8);
        let fresh = fresh_spec
            .build(seed ^ 0xABC ^ stage.num_switches() as u64)
            .expect("fresh jellyfish spec builds");
        let servers_f = ServerMap::new(&fresh);
        let tm_f = permutation_matrix(&servers_f, seed ^ stage.num_switches() as u64);
        let rf = normalized_throughput(&fresh, &servers_f, &tm_f, opts);
        let mut ds = Dataset::new();
        ds.push_meta(format!("topo:from-scratch stage {}", item.index), fresh_spec.to_string());
        ds.push_point("Jellyfish (Incremental)", stage.total_servers() as f64, r.normalized);
        ds.push_point("Jellyfish (From Scratch)", fresh.total_servers() as f64, rf.normalized);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig7

/// Column headers of the Figure 7 table.
pub(crate) const FIG7_COLUMNS: [&str; 5] =
    ["stage", "cumulative_budget", "jellyfish_bisection", "clos_bisection", "servers"];

/// Figure 7: the LEGUP-style expansion comparison.
pub struct Fig7;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn describe(&self) -> &'static str {
        "LEGUP-style expansion: bisection bandwidth per budget (Figure 7)"
    }

    fn work_items(&self, _ctx: &RunCtx) -> Vec<WorkItem> {
        // The expansion arc is stateful stage over stage: one item.
        vec![WorkItem::new(0, "expansion arc")]
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let seed = ctx.seed;
        let scenario = match ctx.scale {
            Scale::Paper => ExpansionScenario { seed, ..Default::default() },
            Scale::Laptop => ExpansionScenario {
                initial_servers: 240,
                first_expansion_servers: 120,
                stages: 6,
                initial_budget: 120_000.0,
                stage_budget: 60_000.0,
                ports: 24,
                servers_per_switch: 16,
                seed,
                ..Default::default()
            },
            Scale::Tiny => ExpansionScenario {
                initial_servers: 96,
                first_expansion_servers: 48,
                stages: 3,
                initial_budget: 40_000.0,
                stage_budget: 20_000.0,
                ports: 12,
                servers_per_switch: 8,
                seed,
                ..Default::default()
            },
        };
        let stages = run_expansion_comparison(scenario).expect("expansion scenario is feasible");
        let mut ds = Dataset::new();
        ds.set_columns(&FIG7_COLUMNS);
        for (i, s) in stages.iter().enumerate() {
            ds.push_row(
                format!("{i}"),
                vec![
                    s.cumulative_budget,
                    s.jellyfish_bisection,
                    s.clos_bisection,
                    s.servers as f64,
                ],
            );
        }
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig8

/// The failed-link fractions of Figure 8.
const FIG8_FRACTIONS: [f64; 6] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];

/// Figure 8: throughput versus fraction of failed links. The work items are
/// the cross product of two base topology specs and the failure fractions,
/// expressed as `+fail_links=f` transform chains.
pub struct Fig8;

fn fig8_bases(scale: Scale) -> [(&'static str, TopoSpec); 2] {
    let k = scale.pick(12, 8, 6);
    // Fat-tree with its native server count; Jellyfish with ~25% more
    // servers on the same switches (the paper: 544 vs 432).
    let jf_servers = FatTree::servers_for_port_count(k) * 5 / 4;
    [
        ("jellyfish", jellyfish_total_spec(FatTree::switches_for_port_count(k), k, jf_servers)),
        ("fat-tree", fattree_spec(k)),
    ]
}

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn describe(&self) -> &'static str {
        "Throughput vs fraction of failed links (Figure 8)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let mut items = Vec::new();
        for (t, (name, base)) in fig8_bases(ctx.scale).into_iter().enumerate() {
            for (fi, &f) in FIG8_FRACTIONS.iter().enumerate() {
                items.push(WorkItem::with_spec(
                    t * FIG8_FRACTIONS.len() + fi,
                    format!("{name} f={f}"),
                    base.clone().with_transform(ScenarioTransform::FailLinks(f)),
                ));
            }
        }
        items
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let seed = ctx.seed;
        let topo_idx = item.index / FIG8_FRACTIONS.len();
        let f = FIG8_FRACTIONS[item.index % FIG8_FRACTIONS.len()];
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, seed, &mut ds);
        let label = if topo_idx == 0 {
            format!("Jellyfish ({} Servers)", snap.topology.total_servers())
        } else {
            format!("Fat-tree ({} Servers)", snap.topology.total_servers())
        };
        let servers = ServerMap::new(&snap.topology);
        let tm = permutation_matrix(&servers, seed ^ 0x8);
        let r = normalized_throughput(&snap.topology, &servers, &tm, sweep_opts());
        ds.push_point(&label, f, r.normalized);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------- fig9

/// Figure 9: ranked per-link path counts under ECMP and k-shortest-paths.
pub struct Fig9;

impl Experiment for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn describe(&self) -> &'static str {
        "Ranked per-link distinct path counts, ECMP vs 8-KSP (Figure 9)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let switches = ctx.scale.pick(245, 80, 25);
        let ports = ctx.scale.pick(14, 10, 8);
        let degree = ctx.scale.pick(11, 7, 5);
        let spec = jellyfish_spec(switches, ports, degree);
        ["ksp8", "ecmp64", "ecmp8"]
            .iter()
            .enumerate()
            .map(|(i, s)| WorkItem::with_spec(i, *s, spec.clone()))
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let seed = ctx.seed;
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, seed, &mut ds);
        let servers = ServerMap::new(&snap.topology);
        let tm = permutation_matrix(&servers, seed ^ 0x9);
        let pairs: Vec<(usize, usize)> =
            tm.switch_demands(&servers).into_iter().map(|(s, d, _)| (s, d)).collect();
        let scheme = match item.index {
            0 => RoutingScheme::ksp8(),
            1 => RoutingScheme::ecmp64(),
            _ => RoutingScheme::ecmp8(),
        };
        let table = PathTable::build(&snap.csr, scheme, pairs.iter().copied());
        let ranked = table.ranked_link_path_counts(&snap.csr);
        let points =
            ranked.iter().enumerate().map(|(rank, &count)| (rank as f64, count as f64)).collect();
        ds.series.push(Series::new(scheme.label(), points));
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ table1

/// Column headers of the Table 1 matrix.
pub(crate) const TABLE1_COLUMNS: [&str; 4] =
    ["congestion_control", "fat-tree ECMP", "jellyfish ECMP", "jellyfish 8-KSP"];

fn table1_transports() -> [TransportPolicy; 3] {
    [
        TransportPolicy::Tcp { flows: 1 },
        TransportPolicy::Tcp { flows: 8 },
        TransportPolicy::Mptcp { subflows: 8 },
    ]
}

/// One cell of Table 1: mean normalized per-server throughput for a
/// topology, path policy and transport policy, from the packet-level engine.
pub fn table1_cell(
    topo: &Topology,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
    duration: f64,
) -> f64 {
    let servers = ServerMap::new(topo);
    let csr = topo.csr();
    let tm = permutation_matrix(&servers, seed);
    let conns = build_connections(&csr, &servers, &tm, path_policy, transport, seed);
    let net = Network::build(&csr, &servers, LinkParams::default());
    let config = SimConfig { duration, warmup: duration * 0.25, seed, ..Default::default() };
    Simulator::new(net, conns, config).run().mean_throughput()
}

/// Table 1: the routing × congestion-control matrix from the packet engine.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn describe(&self) -> &'static str {
        "Routing x congestion-control throughput matrix (Table 1)"
    }

    fn work_items(&self, _ctx: &RunCtx) -> Vec<WorkItem> {
        table1_transports().iter().enumerate().map(|(i, t)| WorkItem::new(i, t.label())).collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let k = ctx.scale.pick(14, 8, 6);
        let seed = ctx.seed;
        let duration = match ctx.scale {
            Scale::Paper => 20.0,
            Scale::Laptop => 8.0,
            Scale::Tiny => 4.0,
        };
        let ft_spec = fattree_spec(k);
        // Jellyfish with ~13% more servers (the paper compares 780 vs 686).
        let jf_servers = FatTree::servers_for_port_count(k) * 9 / 8;
        let jf_spec = jellyfish_total_spec(FatTree::switches_for_port_count(k), k, jf_servers);
        let ft = ctx.spec_snapshot(&ft_spec, seed).expect("fat-tree spec builds");
        let jf = ctx.spec_snapshot(&jf_spec, seed).expect("jellyfish spec builds");
        let t = table1_transports()[item.index];
        // The three cells of one row are independent simulations.
        let cells: Vec<f64> = vec![
            (&ft.topology, PathPolicy::ecmp8()),
            (&jf.topology, PathPolicy::ecmp8()),
            (&jf.topology, PathPolicy::ksp8()),
        ]
        .into_par_iter()
        .map(|(topo, policy)| table1_cell(topo, policy, t, seed, duration))
        .collect();
        let mut ds = Dataset::new();
        ds.push_meta("topo:fat-tree", ft_spec.to_string());
        ds.push_meta("topo:jellyfish", jf_spec.to_string());
        ds.set_columns(&TABLE1_COLUMNS);
        ds.push_row(t.label(), cells);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ fig10

/// Column headers of the Figure 10 table.
pub(crate) const FIG10_COLUMNS: [&str; 4] = ["config", "servers", "optimal", "packet_level"];

fn fig10_sizes(scale: Scale) -> Vec<(usize, usize, usize)> {
    match scale {
        // (switches, ports, degree), slightly oversubscribed as in the paper.
        Scale::Paper => vec![(25, 9, 6), (55, 9, 6), (112, 9, 6), (200, 9, 6), (320, 9, 6)],
        Scale::Laptop => vec![(20, 9, 6), (40, 9, 6), (80, 9, 6)],
        Scale::Tiny => vec![(12, 9, 6), (20, 9, 6)],
    }
}

/// Figure 10: packet-level (MPTCP over 8-KSP) versus optimal throughput.
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn describe(&self) -> &'static str {
        "Packet-level vs optimal (flow-solver) throughput (Figure 10)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig10_sizes(ctx.scale)
            .into_iter()
            .enumerate()
            .map(|(i, (n, ports, degree))| {
                WorkItem::with_spec(i, format!("n={n}"), jellyfish_spec(n, ports, degree))
            })
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let i = item.index;
        let (n, _, _) = fig10_sizes(ctx.scale)[i];
        let seed = ctx.seed;
        let mut ds = Dataset::new();
        // Per-size seed derivation from the legacy loop: seed ^ i.
        let snap = resolve(ctx, item, seed ^ i as u64, &mut ds);
        let topo = &snap.topology;
        let servers = ServerMap::new(topo);
        let tm = permutation_matrix(&servers, seed ^ (i as u64) << 4);
        let optimal = normalized_throughput(topo, &servers, &tm, sweep_opts()).normalized;
        let conns = build_connections(
            &snap.csr,
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            seed,
        );
        // The fluid engine is the packet proxy beyond the packet engine's reach.
        let packet_proxy = if n <= 60 {
            let net = Network::build(&snap.csr, &servers, LinkParams::default());
            let cfg = SimConfig { duration: 6.0, warmup: 1.5, seed, ..Default::default() };
            Simulator::new(net, conns, cfg).run().mean_throughput()
        } else {
            max_min_fair_allocation(&conns).mean_throughput()
        };
        ds.set_columns(&FIG10_COLUMNS);
        ds.push_row(format!("n={n}"), vec![topo.total_servers() as f64, optimal, packet_proxy]);
        ItemResult::new(i, ds)
    }
}

// ------------------------------------------------------------- fig11/fig12

/// Column headers of the Figure 11/12 table.
pub(crate) const FIG11_COLUMNS: [&str; 6] = [
    "config",
    "equipment_ports",
    "fattree_servers",
    "fattree_throughput",
    "jellyfish_servers",
    "jellyfish_throughput",
];

fn fig11_port_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![8, 10, 12, 14],
        Scale::Laptop => vec![6, 8, 10],
        Scale::Tiny => vec![4, 6],
    }
}

fn fluid_throughput(
    topo: &Topology,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
) -> f64 {
    let servers = ServerMap::new(topo);
    let tm = permutation_matrix(&servers, seed ^ 0x11);
    let conns = build_connections(&topo.csr(), &servers, &tm, path_policy, transport, seed);
    max_min_fair_allocation(&conns).mean_throughput()
}

fn fig11_12_work_items(scale: Scale) -> Vec<WorkItem> {
    fig11_port_counts(scale)
        .into_iter()
        .enumerate()
        .map(|(i, k)| WorkItem::with_spec(i, format!("k={k}"), fattree_spec(k)))
        .collect()
}

fn fig11_12_run_item(ctx: &RunCtx, item: &WorkItem) -> ItemResult {
    let k = fig11_port_counts(ctx.scale)[item.index];
    let seed = ctx.seed;
    let mut ds = Dataset::new();
    let ft = resolve(ctx, item, seed, &mut ds);
    let ft = &ft.topology;
    let ft_tp =
        fluid_throughput(ft, PathPolicy::ecmp8(), TransportPolicy::Mptcp { subflows: 8 }, seed);
    // Find the largest Jellyfish server count whose fluid throughput is at
    // least the fat-tree's. `jellyfish_with_servers` is the registry's
    // `jellyfish:servers_total=...` generator under its legacy name.
    let switches = FatTree::switches_for_port_count(k);
    let ft_servers = FatTree::servers_for_port_count(k);
    let mut lo = ft_servers;
    let mut hi = switches * (k - 1);
    let feasible = |servers: usize| -> bool {
        jellyfish_with_servers(switches, k, servers, seed)
            .map(|jf| {
                fluid_throughput(
                    &jf,
                    PathPolicy::ksp8(),
                    TransportPolicy::Mptcp { subflows: 8 },
                    seed,
                ) >= ft_tp - 1e-9
            })
            .unwrap_or(false)
    };
    ds.set_columns(&FIG11_COLUMNS);
    if !feasible(lo) {
        ds.push_row(
            format!("k={k}"),
            vec![ft.total_ports() as f64, ft_servers as f64, ft_tp, ft_servers as f64, ft_tp],
        );
        return ItemResult::new(item.index, ds);
    }
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let jf = jellyfish_with_servers(switches, k, lo, seed).unwrap();
    let jf_tp =
        fluid_throughput(&jf, PathPolicy::ksp8(), TransportPolicy::Mptcp { subflows: 8 }, seed);
    ds.push_row(
        format!("k={k}"),
        vec![ft.total_ports() as f64, ft_servers as f64, ft_tp, lo as f64, jf_tp],
    );
    ItemResult::new(item.index, ds)
}

/// Figure 11: servers supported at the fat-tree's packet-level throughput.
pub struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn describe(&self) -> &'static str {
        "Servers at the fat-tree's packet-level throughput (Figure 11)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig11_12_work_items(ctx.scale)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        fig11_12_run_item(ctx, item)
    }
}

/// Figure 12: the throughput-stability view of the Figure 11 sweep (same
/// data, read per equipment point rather than as a capacity curve).
pub struct Fig12;

impl Experiment for Fig12 {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn describe(&self) -> &'static str {
        "Throughput stability of the Figure 11 sweep (Figure 12)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig11_12_work_items(ctx.scale)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        fig11_12_run_item(ctx, item)
    }
}

// ------------------------------------------------------------------ fig13

/// Prefix of the Jain-index cells of Figure 13: each topology's index cell
/// is named `jain_index/<series label>`.
pub const FIG13_JAIN_PREFIX: &str = "jain_index/";

/// Figure 13: per-flow throughput distribution and Jain's fairness index.
pub struct Fig13;

impl Experiment for Fig13 {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn describe(&self) -> &'static str {
        "Per-flow throughput distribution and Jain fairness (Figure 13)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let k = ctx.scale.pick(14, 8, 6);
        let jf_servers = FatTree::servers_for_port_count(k) * 9 / 8;
        vec![
            WorkItem::with_spec(
                0,
                "jellyfish",
                jellyfish_total_spec(FatTree::switches_for_port_count(k), k, jf_servers),
            ),
            WorkItem::with_spec(1, "fat-tree", fattree_spec(k)),
        ]
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let seed = ctx.seed;
        let (label, policy) = if item.index == 0 {
            ("Jellyfish", PathPolicy::ksp8())
        } else {
            ("Fat-tree", PathPolicy::ecmp8())
        };
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, seed, &mut ds);
        let servers = ServerMap::new(&snap.topology);
        let tm = permutation_matrix(&servers, seed ^ 0x13);
        let conns = build_connections(
            &snap.csr,
            &servers,
            &tm,
            policy,
            TransportPolicy::Mptcp { subflows: 8 },
            seed,
        );
        let report = max_min_fair_allocation(&conns);
        let mut tputs = report.throughputs.clone();
        tputs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let jain = jain_fairness_index(&tputs);
        let points = tputs.iter().enumerate().map(|(rank, &t)| (rank as f64, t)).collect();
        ds.series.push(Series::new(label, points));
        ds.push_cell(format!("{FIG13_JAIN_PREFIX}{label}"), jain);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------------ fig14

fn fig14_sizes(scale: Scale) -> Vec<(usize, usize, usize, usize)> {
    // (switches, ports, degree, containers).
    match scale {
        Scale::Paper => vec![(40, 10, 6, 4), (75, 11, 6, 5), (120, 12, 6, 6), (140, 13, 6, 7)],
        Scale::Laptop => vec![(40, 10, 6, 4), (80, 11, 6, 4)],
        Scale::Tiny => vec![(24, 9, 6, 3)],
    }
}

/// Figure 14: throughput of the two-layer (container-localized) Jellyfish
/// versus the fraction of in-pod links.
pub struct Fig14;

impl Experiment for Fig14 {
    fn name(&self) -> &'static str {
        "fig14"
    }

    fn describe(&self) -> &'static str {
        "Cable localization: two-layer vs unrestricted Jellyfish (Figure 14)"
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        fig14_sizes(ctx.scale)
            .into_iter()
            .enumerate()
            .map(|(i, (n, ports, degree, _))| {
                WorkItem::with_spec(i, format!("n={n}"), jellyfish_spec(n, ports, degree))
            })
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (n, ports, degree, containers) = fig14_sizes(ctx.scale)[item.index];
        let seed = ctx.seed;
        let fractions = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8];
        let opts = sweep_opts();
        let mut ds = Dataset::new();
        // Unrestricted baseline (the spec on the item).
        let base = resolve(ctx, item, seed, &mut ds);
        let base = &base.topology;
        let base_servers = ServerMap::new(base);
        let base_tm = permutation_matrix(&base_servers, seed ^ 0x14);
        let base_tp = normalized_throughput(base, &base_servers, &base_tm, opts).normalized;
        let points = fractions
            .par_iter()
            .map(|&f| {
                let topo = two_layer_jellyfish(
                    n,
                    ports,
                    degree,
                    containers,
                    f,
                    seed ^ ((f * 10.0) as u64),
                )
                .expect("two-layer construction succeeds");
                let servers = ServerMap::new(&topo);
                let tm = permutation_matrix(&servers, seed ^ 0x14);
                let tp = normalized_throughput(&topo, &servers, &tm, opts).normalized;
                (f, if base_tp > 0.0 { tp / base_tp } else { 0.0 })
            })
            .collect();
        ds.series.push(Series::new(format!("{} Servers", base.total_servers()), points));
        ItemResult::new(item.index, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 7;

    fn run(exp: &dyn Experiment, scale: Scale, seed: u64) -> Dataset {
        exp.run(&RunCtx::new(scale, seed))
    }

    #[test]
    fn fig1c_jellyfish_dominates_fat_tree_cdf() {
        let series = run(&Fig1c, Scale::Tiny, SEED).series;
        assert_eq!(series.len(), 2);
        let jf = &series[0];
        let ft = &series[1];
        assert_eq!(jf.label, "Jellyfish");
        // At 5 hops Jellyfish reaches at least as large a fraction of pairs.
        let at5 = |s: &Series| s.points.iter().find(|p| p.0 == 5.0).map(|p| p.1).unwrap_or(1.0);
        assert!(at5(jf) >= at5(ft));
    }

    #[test]
    fn fig2a_jellyfish_curves_are_monotone_decreasing() {
        let series = run(&Fig2a, Scale::Laptop, 0).series;
        assert_eq!(series.len(), 6);
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "{}: not decreasing", s.label);
            }
        }
    }

    #[test]
    fn fig2b_costs_grow_with_servers_and_jellyfish_beats_fat_tree() {
        let series = run(&Fig2b, Scale::Laptop, 0).series;
        assert_eq!(series.len(), 5);
        assert!(series.iter().any(|s| s.label.starts_with("Fat-tree")));
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            assert!(!s.points.is_empty(), "{} has no feasible points", s.label);
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: cost not monotone in servers", s.label);
            }
        }
        // The 48-port Jellyfish supports the 48-port fat-tree's server count
        // (27,648) at a lower port cost (linear interpolation between the
        // 20k and 30k sweep points stays below the fat-tree's 138,240 ports).
        let jf48 = series.iter().find(|s| s.label == "Jellyfish; 48 ports").unwrap();
        let below = jf48.points.iter().rfind(|p| p.0 <= 27_648.0).unwrap();
        let cost_per_server = below.1 / below.0;
        let interpolated = cost_per_server * 27_648.0;
        assert!(interpolated < FatTree::ports_for_port_count(48) as f64);
    }

    #[test]
    fn fig4_jellyfish_beats_swdc_variants() {
        let cells = run(&Fig4, Scale::Tiny, SEED).cells;
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].name, "Jellyfish");
        let jf = cells[0].value;
        for c in &cells[1..] {
            assert!(
                jf >= c.value - 0.05,
                "Jellyfish ({jf}) should not lose to {} ({})",
                c.name,
                c.value
            );
        }
    }

    #[test]
    fn fig5_incremental_matches_scratch_path_lengths() {
        let series = run(&Fig5, Scale::Tiny, SEED).series;
        assert_eq!(series.len(), 4);
        let scratch = series.iter().find(|s| s.label == "Jellyfish; Mean").unwrap();
        let grown = series.iter().find(|s| s.label == "Expanded Jellyfish; Mean").unwrap();
        // At the shared largest size, the means are close.
        let s_last = scratch.points.last().unwrap();
        let g_last = grown.points.last().unwrap();
        assert!((s_last.1 - g_last.1).abs() < 0.25, "scratch {} vs grown {}", s_last.1, g_last.1);
    }

    #[test]
    fn fig9_ksp_spreads_paths_more_than_ecmp() {
        let series = run(&Fig9, Scale::Tiny, SEED).series;
        assert_eq!(series.len(), 3);
        let total = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>();
        let ksp = series.iter().find(|s| s.label.contains("Shortest")).unwrap();
        let ecmp8 = series.iter().find(|s| s.label.contains("8-way")).unwrap();
        assert!(total(ksp) > total(ecmp8));
    }

    #[test]
    fn fig14_localization_degrades_gracefully() {
        let series = run(&Fig14, Scale::Tiny, SEED).series;
        assert_eq!(series.len(), 1);
        let points = &series[0].points;
        // Fully random (0.0 local) should be close to the unrestricted value.
        assert!(points[0].1 > 0.8);
        // Values stay in a sane range.
        for &(_, v) in points {
            assert!(v > 0.2 && v <= 1.2, "value {v} out of range");
        }
    }
}
