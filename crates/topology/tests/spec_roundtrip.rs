//! Property tests for the `TopoSpec` grammar: parse ↔ display round-trips
//! for every registered generator under arbitrary parameter values and
//! arbitrary transform chains, and `build(spec, seed)` is deterministic.

use jellyfish_topology::spec::{generators, ImpairConfig, JitterDist, ScenarioTransform};
use jellyfish_topology::TopoSpec;
use proptest::prelude::*;

/// Builds a spec for generator number `pick` from raw drawn integers. The
/// values need not be buildable — the grammar must round-trip regardless of
/// feasibility — but they cover every registered generator and both
/// jellyfish server conventions.
fn base_spec(pick: usize, a: usize, b: usize, c: usize) -> TopoSpec {
    match pick {
        0 => TopoSpec::new("jellyfish")
            .with_param("switches", 1 + a)
            .with_param("ports", 1 + b % 128)
            .with_param("degree", c % 128),
        1 => TopoSpec::new("jellyfish")
            .with_param("switches", 1 + a)
            .with_param("ports", 1 + b % 128)
            .with_param("servers_total", c),
        2 => TopoSpec::new("fattree").with_param("k", 2 + a % 64),
        3 => TopoSpec::new("swdc")
            .with_param("lattice", ["ring", "torus2d", "hex3d"][c % 3])
            .with_param("n", 4 + a % 2_000)
            .with_param("servers", 1 + b % 8),
        4 => {
            if c.is_multiple_of(2) {
                TopoSpec::new("dd").with_param("config", a % 9)
            } else {
                TopoSpec::new("dd")
                    .with_param("n", 4 + a % 500)
                    .with_param("ports", 2 + b % 32)
                    .with_param("degree", 2 + c % 16)
            }
        }
        _ => TopoSpec::new("leafspine")
            .with_param("leaf", 1 + a % 64)
            .with_param("spine", 1 + b % 64)
            .with_param("servers", 1 + c % 32),
    }
}

fn transform(kind: usize, fraction: f64, racks: usize) -> ScenarioTransform {
    match kind {
        0 => ScenarioTransform::FailLinks(fraction),
        1 => ScenarioTransform::FailSwitches(fraction),
        2 => ScenarioTransform::DegradeUniform(fraction),
        3 => ScenarioTransform::Expand(racks),
        _ => impair_transform(racks, fraction),
    }
}

/// An `impair=` transform with an arbitrary subset of fields set: `mask`
/// picks which knobs are non-default (including none — the all-default
/// config has its own `loss:0` rendering), `x` in `[0, 1)` supplies the
/// values. Fractions keep f64 shortest round-trip formatting, so display →
/// parse must reproduce them bit-exactly.
fn impair_transform(mask: usize, x: f64) -> ScenarioTransform {
    let mut cfg = ImpairConfig::default();
    if mask & 1 != 0 {
        cfg.loss = x;
    }
    if mask & 2 != 0 {
        cfg.ge_good_to_bad = x * 0.5;
        cfg.ge_bad_to_good = 1.0 - x * 0.5;
    }
    if mask & 4 != 0 {
        cfg.jitter_ms = x * 20.0;
    }
    if mask & 8 != 0 {
        cfg.jitter_dist = JitterDist::Exp;
    }
    if mask & 16 != 0 {
        cfg.reorder = x;
    }
    if mask & 32 != 0 {
        cfg.duplicate = x;
    }
    if mask & 64 != 0 {
        cfg.queue = Some(1 + mask % 256);
    }
    ScenarioTransform::Impair(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display → parse is the identity for every representable spec,
    /// covering every registered generator and arbitrary transform chains
    /// (fractions use f64 shortest round-trip formatting, so exact equality
    /// is required, not approximate).
    #[test]
    fn parse_display_round_trips(
        pick in 0usize..6,
        a in 0usize..10_000,
        b in 0usize..10_000,
        c in 0usize..10_000,
        chain in proptest::collection::vec((0usize..5, 0.0f64..1.0, 0usize..1_000), 0..4),
    ) {
        let mut spec = base_spec(pick, a, b, c);
        for (kind, fraction, racks) in chain {
            spec = spec.with_transform(transform(kind, fraction, racks));
        }
        let rendered = spec.to_string();
        let parsed: TopoSpec = match rendered.parse() {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::Fail(format!("'{rendered}' does not re-parse: {e}"))),
        };
        prop_assert_eq!(&parsed, &spec, "'{}' parsed to a different spec", &rendered);
        // And display is stable across the round trip.
        prop_assert_eq!(parsed.to_string(), rendered);
    }
}

proptest! {
    // Building is the expensive half; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(15))]

    /// For buildable spec instances, two builds with one seed are
    /// structurally identical across every registered generator.
    #[test]
    fn build_is_deterministic_per_seed(seed in 0u64..1_000_000, pick in 0usize..5) {
        let g = generators()[pick];
        let spec: TopoSpec = g.example().parse().unwrap();
        let a = match spec.build(seed) {
            Ok(topo) => topo,
            Err(e) => return Err(TestCaseError::Fail(format!("{}: {e}", g.name()))),
        };
        let b = spec.build(seed).unwrap();
        prop_assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>(),
            "{}: same seed produced different graphs", g.name()
        );
        let servers_a: Vec<usize> = (0..a.num_switches()).map(|v| a.servers(v)).collect();
        let servers_b: Vec<usize> = (0..b.num_switches()).map(|v| b.servers(v)).collect();
        prop_assert_eq!(servers_a, servers_b);
    }
}
