//! Property-based tests for the topology substrate.
//!
//! These check the structural invariants the rest of the workspace relies on
//! across randomized parameter ranges: degree bounds, connectivity, port
//! accounting, and expansion behaviour.

use jellyfish_topology::expansion::{add_switch, grow_schedule};
use jellyfish_topology::failures::{fail_random_links, survivability};
use jellyfish_topology::fattree::FatTree;
use jellyfish_topology::properties::{bfs_distances, path_length_stats};
use jellyfish_topology::rrg::build_heterogeneous;
use jellyfish_topology::{Graph, JellyfishBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Jellyfish construction always respects the degree bound, is simple,
    /// and leaves at most one port unmatched.
    #[test]
    fn rrg_degree_bound_and_near_regularity(
        n in 5usize..80,
        r in 3usize..8,
        extra_ports in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(r < n);
        let ports = r + extra_ports;
        let topo = JellyfishBuilder::new(n, ports, r).seed(seed).build().unwrap();
        let g = topo.graph();
        prop_assert!(g.max_degree() <= r);
        let deficient: Vec<_> = g.nodes().filter(|&v| g.degree(v) < r).collect();
        prop_assert!(deficient.len() <= 1, "deficient switches: {deficient:?}");
        prop_assert!(g.is_connected());
        prop_assert!(topo.check_invariants().is_ok());
        prop_assert_eq!(topo.total_servers(), n * extra_ports);
    }

    /// Incremental expansion never breaks invariants, never lowers any
    /// existing switch's degree, and keeps the network connected.
    #[test]
    fn expansion_preserves_invariants(
        n in 10usize..50,
        additions in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut topo = JellyfishBuilder::new(n, 10, 6).seed(seed).build().unwrap();
        let degrees_before: Vec<_> = topo.graph().nodes().map(|v| topo.graph().degree(v)).collect();
        for i in 0..additions {
            add_switch(&mut topo, 10, 4, seed.wrapping_add(i as u64)).unwrap();
        }
        prop_assert!(topo.check_invariants().is_ok());
        prop_assert!(topo.graph().is_connected());
        for (v, &d) in degrees_before.iter().enumerate() {
            prop_assert!(topo.graph().degree(v) >= d, "switch {v} lost a link");
        }
        prop_assert_eq!(topo.num_switches(), n + additions);
    }

    /// The immutable CSR snapshot is equivalent to the mutable graph it was
    /// taken from: same degrees, same (sorted) neighbor sets, same BFS
    /// distances from every source, and consistent arc/edge-id mappings.
    #[test]
    fn csr_snapshot_equivalent_to_graph(
        n in 6usize..60,
        r in 3usize..7,
        seed in any::<u64>(),
    ) {
        prop_assume!(r < n);
        let topo = JellyfishBuilder::new(n, r + 2, r).seed(seed).build().unwrap();
        let g = topo.graph();
        let csr = topo.csr();
        prop_assert_eq!(csr.num_nodes(), g.num_nodes());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        prop_assert_eq!(csr.num_arcs(), 2 * g.num_edges());
        for u in g.nodes() {
            prop_assert_eq!(csr.degree(u), g.degree(u));
            let mut expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            expected.sort_unstable();
            prop_assert_eq!(csr.neighbors(u), expected.as_slice());
            prop_assert_eq!(csr.bfs_distances(u), bfs_distances(g, u));
        }
        for e in g.edges() {
            let (lo, hi) = (e.a.min(e.b), e.a.max(e.b));
            let eid = csr.edge_index(lo, hi).expect("edge present in snapshot");
            prop_assert_eq!(csr.edge_endpoints(eid), (lo, hi));
        }
    }

    /// BFS distances satisfy the triangle inequality over edges: for every
    /// edge (u, v), |dist(s,u) - dist(s,v)| <= 1.
    #[test]
    fn bfs_distances_are_consistent(n in 5usize..60, seed in any::<u64>()) {
        prop_assume!(n > 4);
        let topo = JellyfishBuilder::new(n, 8, 4).seed(seed).build().unwrap();
        let g = topo.graph();
        let dist = bfs_distances(g, 0);
        for e in g.edges() {
            let (da, db) = (dist[e.a], dist[e.b]);
            prop_assert!(da != usize::MAX && db != usize::MAX);
            prop_assert!(da.abs_diff(db) <= 1, "edge {e} violates BFS consistency");
        }
    }

    /// Path-length statistics are internally consistent: the histogram sums to
    /// the number of ordered reachable pairs and the mean matches it.
    #[test]
    fn path_length_stats_consistency(n in 4usize..40, seed in any::<u64>()) {
        prop_assume!(n > 4);
        let topo = JellyfishBuilder::new(n, 8, 4).seed(seed).build().unwrap();
        let stats = path_length_stats(topo.graph());
        let pairs: usize = stats.histogram.iter().sum();
        prop_assert_eq!(pairs + stats.unreachable_pairs, n * (n - 1));
        let weighted: usize = stats.histogram.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert!((stats.mean - weighted as f64 / pairs as f64).abs() < 1e-9);
        prop_assert!(stats.fraction_within(stats.diameter) > 0.999);
    }

    /// Failing links never increases connectivity and the surviving component
    /// fraction is monotone in the failure rate (statistically: we just check
    /// bounds and invariants here).
    #[test]
    fn failures_keep_invariants(frac in 0.0f64..0.9, seed in any::<u64>()) {
        let mut topo = JellyfishBuilder::new(40, 10, 6).seed(seed).build().unwrap();
        let links_before = topo.num_links();
        let report = fail_random_links(&mut topo, frac, seed);
        prop_assert_eq!(topo.num_links(), links_before - report.failed_links.len());
        prop_assert!(topo.check_invariants().is_ok());
        let s = survivability(&topo);
        prop_assert!(s.switch_fraction > 0.0 && s.switch_fraction <= 1.0);
        prop_assert!(s.server_fraction >= 0.0 && s.server_fraction <= 1.0);
    }

    /// The heterogeneous builder respects per-switch degree targets.
    #[test]
    fn heterogeneous_respects_degree_targets(
        small in 4usize..20,
        large in 2usize..8,
        seed in any::<u64>(),
    ) {
        let n = small + large;
        prop_assume!(n >= 8);
        let mut ports = vec![8usize; small];
        ports.extend(vec![16usize; large]);
        let mut deg = vec![5usize; small];
        deg.extend(vec![7usize; large]);
        prop_assume!(deg.iter().all(|&d| d < n));
        let topo = build_heterogeneous(&ports, &deg, seed).unwrap();
        for (i, &target) in deg.iter().enumerate() {
            prop_assert!(topo.graph().degree(i) <= target);
        }
        // The randomized completion matches all but at most one port in the
        // homogeneous case; with mixed degree targets on very small networks a
        // second port can occasionally stay free (both leftovers adjacent and
        // sharing their only non-neighbor), so allow a deficit of two here.
        let deficit: usize = (0..n).map(|i| deg[i] - topo.graph().degree(i)).sum();
        prop_assert!(deficit <= 2, "total degree deficit {deficit}");
        prop_assert!(topo.graph().is_connected());
    }

    /// Fat-trees are always fully regular with zero free ports, and their
    /// size formulas hold.
    #[test]
    fn fat_tree_structure(k in 1usize..8) {
        let k = k * 2; // even
        let ft = FatTree::new(k).unwrap();
        let t = ft.topology();
        prop_assert_eq!(t.num_switches(), 5 * k * k / 4);
        prop_assert_eq!(t.total_servers(), k * k * k / 4);
        for v in t.graph().nodes() {
            prop_assert_eq!(t.free_ports(v), 0);
        }
        prop_assert!(t.graph().is_connected());
    }

    /// Growth schedules always produce connected, invariant-respecting stages
    /// whose sizes follow the schedule.
    #[test]
    fn grow_schedule_stage_sizes(
        initial in 8usize..16,
        steps in 1usize..4,
        step in 5usize..15,
        seed in any::<u64>(),
    ) {
        let target = initial + steps * step;
        let stages = grow_schedule(initial, target, step, 10, 6, seed).unwrap();
        prop_assert_eq!(stages.len(), steps + 1);
        for (i, stage) in stages.iter().enumerate() {
            prop_assert_eq!(stage.num_switches(), initial + i * step);
            prop_assert!(stage.graph().is_connected());
            prop_assert!(stage.check_invariants().is_ok());
        }
    }

    /// Graph edit operations keep the internal adjacency/edge-list views
    /// consistent under arbitrary add/remove sequences.
    #[test]
    fn graph_random_edit_sequence(ops in proptest::collection::vec((0usize..30, 0usize..30, any::<bool>()), 1..200)) {
        let mut g = Graph::new(30);
        for (u, v, add) in ops {
            if u == v {
                continue;
            }
            if add {
                g.add_edge(u, v);
            } else {
                g.remove_edge(u, v);
            }
            prop_assert!(g.check_invariants().is_ok());
        }
    }
}
