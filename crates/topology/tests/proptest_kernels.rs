//! Equivalence proptests for the hot-kernel rewrites (PERF.md): the
//! direction-optimizing BFS, the multi-source bit-parallel BFS, and the
//! chunked slice kernels must be bit-identical to their always-compiled
//! scalar references across random topologies, sources, and word streams —
//! and across **every** generator in the [`TopoSpec`] registry, so adding a
//! generator without extending the small-spec table below fails loudly.

use jellyfish_topology::bfs::{bfs_into, bfs_scalar_into, ms_bfs_into};
use jellyfish_topology::kernels::{
    count_ones_chunked, count_ones_scalar, cut_size_chunked, cut_size_scalar, or_assign_chunked,
    or_assign_scalar, or_gather_chunked, or_gather_scalar,
};
use jellyfish_topology::spec::generators;
use jellyfish_topology::{BfsScratch, JellyfishBuilder, MsBfsScratch, TopoSpec, UNREACHED};
use proptest::prelude::*;

/// One deliberately small instance per registered generator. The coverage
/// assertion in `direction_optimizing_bfs_matches_scalar_on_every_generator`
/// keeps this table in sync with the registry.
const SMALL_SPECS: &[(&str, &str)] = &[
    ("jellyfish", "jellyfish:switches=26,ports=8,degree=5"),
    ("fattree", "fattree:k=4"),
    ("swdc", "swdc:lattice=torus2d,n=25,servers=1"),
    ("dd", "dd:n=18,ports=6,degree=4"),
    ("leafspine", "leafspine:leaf=6,spine=4,servers=2"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The direction-optimizing BFS returns exactly the scalar queue BFS's
    /// levels on every generator in the registry, from every source.
    #[test]
    fn direction_optimizing_bfs_matches_scalar_on_every_generator(seed in any::<u64>()) {
        for gen in generators() {
            let (_, spec_str) = SMALL_SPECS
                .iter()
                .find(|(name, _)| *name == gen.name())
                .unwrap_or_else(|| panic!(
                    "generator '{}' is registered but has no small spec in SMALL_SPECS; \
                     add one so the BFS equivalence sweep covers it",
                    gen.name()
                ));
            let spec: TopoSpec = spec_str.parse().expect("small spec parses");
            let topo = spec.build(seed).expect("small spec builds");
            let csr = topo.csr();
            let n = csr.num_nodes();
            let mut scratch = BfsScratch::new(n);
            let mut fast = vec![0u32; n];
            let mut reference = vec![0u32; n];
            for source in 0..n {
                bfs_into(&csr, source, &mut fast, &mut scratch);
                bfs_scalar_into(&csr, source, &mut reference);
                prop_assert_eq!(
                    &fast, &reference,
                    "generator {} source {} (seed {})", gen.name(), source, seed
                );
            }
        }
    }

    /// Each lane of the multi-source bit-parallel BFS equals an independent
    /// scalar BFS from that lane's source, for any batch size up to 64
    /// (duplicate sources included).
    #[test]
    fn ms_bfs_lanes_match_scalar(
        n in 6usize..60,
        lanes in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let topo = JellyfishBuilder::new(n, 8, 4).seed(seed).build().unwrap();
        let csr = topo.csr();
        let sources: Vec<usize> =
            (0..lanes).map(|i| (seed.wrapping_add(i as u64) % n as u64) as usize).collect();
        let mut rows = vec![UNREACHED; lanes * n];
        let mut scratch = MsBfsScratch::new(n);
        ms_bfs_into(&csr, &sources, &mut rows, &mut scratch);
        let mut reference = vec![0u32; n];
        for (lane, &src) in sources.iter().enumerate() {
            bfs_scalar_into(&csr, src, &mut reference);
            prop_assert_eq!(
                &rows[lane * n..(lane + 1) * n], reference.as_slice(),
                "lane {} source {} (n {}, seed {})", lane, src, n, seed
            );
        }
    }

    /// Chunked bitset kernels are exact on random word streams of awkward
    /// lengths (remainder handling included).
    #[test]
    fn word_kernels_chunked_match_scalar(
        words in proptest::collection::vec(any::<u64>(), 0..80),
        other in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        prop_assert_eq!(count_ones_chunked(&words), count_ones_scalar(&words));
        let len = words.len().min(other.len());
        let mut scalar_dst = words[..len].to_vec();
        or_assign_scalar(&mut scalar_dst, &other[..len]);
        let mut chunked_dst = words[..len].to_vec();
        or_assign_chunked(&mut chunked_dst, &other[..len]);
        prop_assert_eq!(scalar_dst, chunked_dst);
    }

    /// The OR-gather at the heart of the multi-source BFS is exact for any
    /// index pattern (repeats included).
    #[test]
    fn or_gather_chunked_matches_scalar(
        masks in proptest::collection::vec(any::<u64>(), 1..64),
        raw_idx in proptest::collection::vec(any::<u32>(), 0..70),
    ) {
        let idx: Vec<u32> = raw_idx.iter().map(|&i| i % masks.len() as u32).collect();
        prop_assert_eq!(or_gather_chunked(&masks, &idx), or_gather_scalar(&masks, &idx));
    }

    /// The branch-free cut-size scan counts exactly the crossing edges of a
    /// random partition of a random topology.
    #[test]
    fn cut_size_chunked_matches_scalar(
        n in 6usize..50,
        seed in any::<u64>(),
        bits in any::<u64>(),
    ) {
        let topo = JellyfishBuilder::new(n, 8, 4).seed(seed).build().unwrap();
        let csr = topo.csr();
        let in_set: Vec<bool> = (0..n).map(|v| (bits >> (v % 64)) & 1 == 1).collect();
        let edges: Vec<(u32, u32)> = csr.edges().map(|(u, v)| (u as u32, v as u32)).collect();
        let expected = cut_size_scalar(&edges, &in_set);
        prop_assert_eq!(cut_size_chunked(&edges, &in_set), expected);
        prop_assert_eq!(csr.cut_size(&in_set), expected);
    }
}
