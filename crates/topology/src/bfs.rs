//! The breadth-first-search distance kernel behind every all-pairs sweep in
//! the workspace, plus the flat [`DistanceMatrix`] those sweeps fill.
//!
//! Two kernels compute identical hop distances:
//!
//! * [`bfs_scalar_into`] — the classic queue-driven top-down BFS (the
//!   pre-rewrite implementation), kept always-compiled as the equivalence
//!   reference and benchmark baseline;
//! * [`bfs_into`] — a direction-optimizing BFS (Beamer et al.): levels whose
//!   frontier touches a large share of the remaining edges are expanded
//!   *bottom-up* (every unvisited node scans its neighbors for a frontier
//!   member, over `u64` bitset words) instead of top-down. On the
//!   low-diameter expanders this repository studies, one or two middle
//!   levels contain nearly every node, which is exactly the regime where
//!   bottom-up wins.
//!
//! BFS levels are a pure function of the graph, so the two kernels agree
//! bit-for-bit on every input regardless of traversal direction — enforced
//! by proptests across every generator in the spec registry. The bitset
//! word operations come from [`crate::kernels`] and dispatch to chunked
//! (autovectorizable) variants under the `simd` feature.

use crate::csr::CsrGraph;
use crate::graph::NodeId;
use crate::kernels;

/// Distance value stored for unreachable nodes.
pub const UNREACHED: u32 = u32::MAX;

/// Switch to bottom-up when the frontier's out-edges exceed `1/ALPHA` of the
/// edges still incident to unvisited nodes (Beamer's α).
const ALPHA: usize = 14;

/// Switch back to top-down when the frontier shrinks below `n / BETA`
/// nodes (Beamer's β).
const BETA: usize = 24;

/// Flat row-major all-pairs distance matrix: `row(src)[dst]` is the hop
/// distance from `src` to `dst`, [`UNREACHED`] when no path exists.
///
/// Replaces the `Vec<Vec<usize>>` the all-pairs sweeps used to return: one
/// contiguous `u32` allocation instead of one heap cell per source, a 2×
/// smaller footprint, and rows that stream through the cache in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    cols: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// Builds a matrix from its flat row-major data; `data.len()` must be a
    /// multiple of `cols` (`rows × cols`).
    pub fn from_flat(cols: usize, data: Vec<u32>) -> Self {
        if cols == 0 {
            assert!(data.is_empty(), "zero-column matrix with data");
        } else {
            assert_eq!(data.len() % cols, 0, "flat data is not a whole number of rows");
        }
        DistanceMatrix { cols, data }
    }

    /// Number of rows (sources).
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Number of columns (destinations).
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// The distance row of `src`.
    #[inline]
    pub fn row(&self, src: NodeId) -> &[u32] {
        &self.data[src * self.cols..(src + 1) * self.cols]
    }

    /// Hop distance from `src` to `dst` ([`UNREACHED`] when unreachable).
    #[inline]
    pub fn get(&self, src: NodeId, dst: NodeId) -> u32 {
        self.data[src * self.cols + dst]
    }

    /// Iterates over the rows in source order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.num_rows())
    }

    /// The whole matrix as one flat row-major slice.
    #[inline]
    pub fn as_flat(&self) -> &[u32] {
        &self.data
    }

    /// Mutable access to the distance row of `src`, for in-place repair of
    /// individual sources after a topology delta (`jellyfish-routing`'s
    /// incremental module). Hop distances are canonical, so any correct BFS
    /// writing a row here reproduces the full-rebuild bytes exactly.
    #[inline]
    pub fn row_mut(&mut self, src: NodeId) -> &mut [u32] {
        &mut self.data[src * self.cols..(src + 1) * self.cols]
    }

    /// Consumes the matrix and returns its flat row-major data, for repairs
    /// that change the node count (and therefore the row stride).
    #[inline]
    pub fn into_flat(self) -> Vec<u32> {
        self.data
    }
}

/// Reusable per-thread buffers for [`bfs_into`], so an all-pairs sweep
/// allocates once per worker instead of once per source.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// Current-level node queue (top-down).
    frontier: Vec<u32>,
    /// Next-level node queue (top-down).
    next: Vec<u32>,
    /// Bitset of the current frontier.
    frontier_bits: Vec<u64>,
    /// Bitset of the next frontier.
    next_bits: Vec<u64>,
    /// Bitset of all visited nodes.
    visited: Vec<u64>,
}

impl BfsScratch {
    /// Scratch sized for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BfsScratch {
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            frontier_bits: vec![0; words],
            next_bits: vec![0; words],
            visited: vec![0; words],
        }
    }
}

#[inline]
fn test_bit(bits: &[u64], v: usize) -> bool {
    bits[v >> 6] & (1u64 << (v & 63)) != 0
}

#[inline]
fn set_bit(bits: &mut [u64], v: usize) {
    bits[v >> 6] |= 1u64 << (v & 63);
}

/// Queue-driven top-down BFS writing hop distances into `dist`
/// ([`UNREACHED`] when unreachable). This is the pre-rewrite kernel, kept as
/// the always-compiled scalar reference and benchmark baseline.
pub fn bfs_scalar_into(csr: &CsrGraph, source: NodeId, dist: &mut [u32]) {
    let n = csr.num_nodes();
    assert_eq!(dist.len(), n);
    dist.fill(UNREACHED);
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in csr.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHED {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Direction-optimizing BFS writing hop distances into `dist`. Produces
/// exactly the distances of [`bfs_scalar_into`]; `scratch` is reset on entry
/// and can be reused across calls for the same graph size.
pub fn bfs_into(csr: &CsrGraph, source: NodeId, dist: &mut [u32], scratch: &mut BfsScratch) {
    let n = csr.num_nodes();
    assert_eq!(dist.len(), n);
    dist.fill(UNREACHED);
    if n == 0 {
        return;
    }
    dist[source] = 0;

    let words = n.div_ceil(64);
    scratch.frontier_bits[..words].fill(0);
    scratch.next_bits[..words].fill(0);
    scratch.visited[..words].fill(0);
    scratch.frontier.clear();
    scratch.next.clear();

    scratch.frontier.push(source as u32);
    set_bit(&mut scratch.frontier_bits, source);
    set_bit(&mut scratch.visited, source);

    // Out-edges of the current frontier (Beamer's m_f) and edges still
    // incident to unvisited nodes (m_u).
    let mut frontier_edges = csr.degree(source);
    let mut unvisited_edges = csr.num_arcs().saturating_sub(frontier_edges);
    // The frontier queue is only maintained while running top-down; after a
    // bottom-up level it is rebuilt from the bitset on demand.
    let mut queue_is_current = true;
    let mut frontier_len = 1usize;
    let mut level = 0u32;

    while frontier_len > 0 {
        level += 1;
        let bottom_up = frontier_edges > unvisited_edges / ALPHA && frontier_len >= n / BETA.max(1);
        let mut next_edges = 0usize;
        let mut next_len = 0usize;

        if bottom_up {
            // Every unvisited node scans its row for a frontier member; the
            // candidate scan walks whole `u64` words of unvisited bits.
            for w in 0..words {
                let mut rem = !scratch.visited[w];
                if w == words - 1 && n & 63 != 0 {
                    rem &= (1u64 << (n & 63)) - 1;
                }
                while rem != 0 {
                    let v = (w << 6) + rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    for &u in csr.neighbors(v) {
                        if test_bit(&scratch.frontier_bits, u as usize) {
                            dist[v] = level;
                            set_bit(&mut scratch.next_bits, v);
                            next_len += 1;
                            next_edges += csr.degree(v);
                            break;
                        }
                    }
                }
            }
            queue_is_current = false;
        } else {
            if !queue_is_current {
                // Rebuild the queue from the frontier bitset (ascending node
                // order, matching what a top-down expansion would have left).
                scratch.frontier.clear();
                for w in 0..words {
                    let mut rem = scratch.frontier_bits[w];
                    while rem != 0 {
                        let v = (w << 6) + rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        scratch.frontier.push(v as u32);
                    }
                }
                queue_is_current = true;
            }
            scratch.next.clear();
            for i in 0..scratch.frontier.len() {
                let u = scratch.frontier[i] as usize;
                for &v in csr.neighbors(u) {
                    let v = v as usize;
                    if dist[v] == UNREACHED {
                        dist[v] = level;
                        set_bit(&mut scratch.next_bits, v);
                        scratch.next.push(v as u32);
                        next_len += 1;
                        next_edges += csr.degree(v);
                    }
                }
            }
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }

        kernels::or_assign(&mut scratch.visited[..words], &scratch.next_bits[..words]);
        std::mem::swap(&mut scratch.frontier_bits, &mut scratch.next_bits);
        scratch.next_bits[..words].fill(0);
        unvisited_edges = unvisited_edges.saturating_sub(next_edges);
        frontier_edges = next_edges;
        frontier_len = next_len;
    }
}

/// Reusable buffers for [`ms_bfs_into`]: one `u64` source-bitmask per node.
#[derive(Debug, Clone)]
pub struct MsBfsScratch {
    /// Sources whose current frontier contains the node.
    frontier: Vec<u64>,
    /// Sources discovering the node this level.
    next: Vec<u64>,
    /// Sources that have visited the node.
    seen: Vec<u64>,
}

impl MsBfsScratch {
    /// Scratch sized for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        MsBfsScratch { frontier: vec![0; n], next: vec![0; n], seen: vec![0; n] }
    }
}

/// Multi-source bit-parallel BFS: runs up to 64 sources at once, one `u64`
/// lane per source. `rows` is the flat row-major output
/// (`sources.len() × n`, row `i` holding the distances from `sources[i]`).
///
/// Every level propagates all lanes with one OR-gather per node over its CSR
/// neighbor row ([`kernels::or_gather`]), so a whole batch costs one
/// edge-sweep per BFS level instead of one per source — the workhorse behind
/// the all-pairs sweeps. Distances are BFS levels and therefore exactly
/// those of [`bfs_scalar_into`] / [`bfs_into`] lane by lane.
pub fn ms_bfs_into(
    csr: &CsrGraph,
    sources: &[NodeId],
    rows: &mut [u32],
    scratch: &mut MsBfsScratch,
) {
    let n = csr.num_nodes();
    let lanes = sources.len();
    assert!(lanes <= 64, "at most 64 sources per batch");
    assert_eq!(rows.len(), lanes * n, "rows must be sources × n");
    rows.fill(UNREACHED);
    if n == 0 || lanes == 0 {
        return;
    }
    scratch.frontier[..n].fill(0);
    scratch.seen[..n].fill(0);
    for (lane, &s) in sources.iter().enumerate() {
        rows[lane * n + s] = 0;
        scratch.frontier[s] |= 1u64 << lane;
        scratch.seen[s] |= 1u64 << lane;
    }

    let mut level = 0u32;
    let mut active = true;
    while active {
        active = false;
        level += 1;
        // next[v] is fully overwritten each level, so it never needs
        // clearing; the frontier/next buffers just swap.
        for v in 0..n {
            let gathered = kernels::or_gather(&scratch.frontier, csr.neighbors(v));
            let fresh = gathered & !scratch.seen[v];
            scratch.next[v] = fresh;
            if fresh != 0 {
                scratch.seen[v] |= fresh;
                let mut rem = fresh;
                while rem != 0 {
                    let lane = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    rows[lane * n + v] = level;
                }
                active = true;
            }
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
}

/// One-shot convenience wrapper around [`bfs_into`] allocating its own row
/// and scratch.
pub fn bfs_distances_u32(csr: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; csr.num_nodes()];
    let mut scratch = BfsScratch::new(csr.num_nodes());
    bfs_into(csr, source, &mut dist, &mut scratch);
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::rrg::JellyfishBuilder;

    fn assert_kernels_agree(csr: &CsrGraph) {
        let n = csr.num_nodes();
        let mut scratch = BfsScratch::new(n);
        let mut fast = vec![0u32; n];
        let mut reference = vec![0u32; n];
        for s in csr.nodes() {
            bfs_into(csr, s, &mut fast, &mut scratch);
            bfs_scalar_into(csr, s, &mut reference);
            assert_eq!(fast, reference, "source {s}");
        }
    }

    #[test]
    fn matches_scalar_on_ring() {
        let mut g = Graph::new(10);
        for i in 0..10 {
            g.add_edge(i, (i + 1) % 10);
        }
        assert_kernels_agree(&CsrGraph::from_graph(&g));
    }

    #[test]
    fn matches_scalar_on_jellyfish() {
        // Dense expander: exercises the bottom-up path (middle levels hold
        // most nodes).
        let topo = JellyfishBuilder::new(80, 10, 8).seed(3).build().unwrap();
        assert_kernels_agree(&topo.csr());
    }

    #[test]
    fn matches_scalar_on_disconnected() {
        let mut g = Graph::new(130);
        for i in 0..64 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(70, 71);
        assert_kernels_agree(&CsrGraph::from_graph(&g));
    }

    #[test]
    fn empty_and_single_node() {
        let csr = CsrGraph::from_graph(&Graph::new(1));
        assert_eq!(bfs_distances_u32(&csr, 0), vec![0]);
        let csr0 = CsrGraph::from_graph(&Graph::new(0));
        let mut scratch = BfsScratch::new(0);
        let mut dist: Vec<u32> = Vec::new();
        bfs_into(&csr0, 0, &mut dist, &mut scratch);
    }

    fn assert_ms_bfs_agrees(csr: &CsrGraph) {
        let n = csr.num_nodes();
        let sources: Vec<usize> = csr.nodes().collect();
        let mut scratch = MsBfsScratch::new(n);
        let mut reference = vec![0u32; n];
        for batch in sources.chunks(64) {
            let mut rows = vec![0u32; batch.len() * n];
            ms_bfs_into(csr, batch, &mut rows, &mut scratch);
            for (lane, &s) in batch.iter().enumerate() {
                bfs_scalar_into(csr, s, &mut reference);
                assert_eq!(&rows[lane * n..(lane + 1) * n], &reference[..], "source {s}");
            }
        }
    }

    #[test]
    fn ms_bfs_matches_scalar_per_lane() {
        let topo = JellyfishBuilder::new(80, 10, 8).seed(3).build().unwrap();
        assert_ms_bfs_agrees(&topo.csr());
        // More than one batch, with unreachable components.
        let mut g = Graph::new(130);
        for i in 0..64 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(70, 71);
        assert_ms_bfs_agrees(&CsrGraph::from_graph(&g));
    }

    #[test]
    fn ms_bfs_empty_batch_and_graph() {
        let csr = CsrGraph::from_graph(&Graph::new(3));
        let mut scratch = MsBfsScratch::new(3);
        let mut rows: Vec<u32> = Vec::new();
        ms_bfs_into(&csr, &[], &mut rows, &mut scratch);
        let csr0 = CsrGraph::from_graph(&Graph::new(0));
        let mut scratch0 = MsBfsScratch::new(0);
        ms_bfs_into(&csr0, &[], &mut rows, &mut scratch0);
    }

    #[test]
    fn distance_matrix_layout() {
        let m = DistanceMatrix::from_flat(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.row(1), &[1, 0, 1]);
        assert_eq!(m.get(2, 0), 2);
        assert_eq!(m.rows().count(), 3);
        assert_eq!(m.as_flat().len(), 9);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn distance_matrix_rejects_ragged_data() {
        DistanceMatrix::from_flat(4, vec![0, 1, 2]);
    }
}
