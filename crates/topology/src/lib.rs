//! Topology substrate for the Jellyfish (NSDI 2012) reproduction.
//!
//! This crate provides everything the paper's evaluation needs at the
//! topology layer:
//!
//! * [`Graph`] — a small, dependency-free undirected graph with port
//!   accounting, used as the switch-level interconnect representation while
//!   a topology is being built or mutated.
//! * [`CsrGraph`] (module [`csr`]) — the immutable compressed-sparse-row
//!   snapshot taken from a finished [`Graph`]; the only graph representation
//!   the routing, flow and simulation crates consume. Build it with
//!   [`Topology::csr`].
//! * [`Topology`] — a graph plus per-switch port counts and attached-server
//!   counts; the unit every generator in this crate produces and every
//!   consumer (routing, flow, simulation) accepts.
//! * [`JellyfishBuilder`] (module [`rrg`]) — the paper's §3 construction of a
//!   degree-bounded random regular graph among top-of-rack switches.
//! * [`expansion`] — the paper's §4.2 incremental-expansion procedure (add a
//!   rack or a bare switch by breaking random existing links).
//! * [`fattree`] — the three-level k-ary fat-tree baseline of Al-Fares et al.
//! * [`swdc`] — Small-World Data Center baselines (ring, 2-D torus,
//!   3-D hex torus lattices with random shortcuts).
//! * [`clos`] — folded-Clos / leaf-spine generator and a budgeted upgrade
//!   planner used as the LEGUP stand-in.
//! * [`degree_diameter`] — benchmark graphs approximating the best-known
//!   degree-diameter graphs via simulated annealing on average path length.
//! * [`spec`] — the [`TopoSpec`] registry: every generator above as a
//!   parseable, round-trippable spec string
//!   (`jellyfish:switches=245,ports=14,degree=11+fail_links=0.08`) with
//!   composable scenario transforms; see TOPOLOGIES.md.
//! * [`failures`] — random link / switch failure injection.
//! * [`properties`] — path-length distributions, diameter, reachability
//!   profiles (Figure 1(c) and Figure 5 machinery).
//! * [`bfs`] / [`kernels`] — the direction-optimizing BFS distance kernel
//!   (with its always-compiled scalar fallback), the flat [`DistanceMatrix`]
//!   all-pairs result, and the chunked bitset/cut-size slice kernels behind
//!   the `simd` feature; see PERF.md at the repository root.
//!
//! # Quick example
//!
//! ```
//! use jellyfish_topology::{JellyfishBuilder, properties};
//!
//! // 20 switches, 12 ports each, 8 used for the network, 4 for servers.
//! let topo = JellyfishBuilder::new(20, 12, 8).seed(7).build().unwrap();
//! assert_eq!(topo.num_switches(), 20);
//! assert_eq!(topo.total_servers(), 20 * 4);
//! let stats = properties::path_length_stats(topo.graph());
//! assert!(stats.mean > 1.0 && stats.diameter <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod clos;
pub mod csr;
pub mod degree_diameter;
pub mod expansion;
pub mod failures;
pub mod fattree;
pub mod graph;
pub mod kernels;
pub mod properties;
pub mod rrg;
pub mod spec;
pub mod swdc;
pub mod topology;

pub use bfs::{BfsScratch, DistanceMatrix, MsBfsScratch, UNREACHED};
pub use csr::{ArcId, CsrGraph, EdgeId};
pub use graph::{Graph, NodeId};
pub use rrg::JellyfishBuilder;
pub use spec::{ScenarioTransform, SpecError, TopoSpec, TopologyGenerator};
pub use topology::{InvariantError, SwitchKind, Topology, TopologyError};
