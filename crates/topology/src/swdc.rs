//! Small-World Data Center (SWDC) baseline topologies (Shin, Wong, Sirer,
//! SoCC 2011), used in the paper's Figure 4 comparison.
//!
//! An SWDC topology starts from a regular lattice (a ring, a 2-D torus, or a
//! 3-D "hex" torus) and adds random small-world shortcut links until every
//! node reaches a fixed degree (6 in the paper's comparison). The lattice
//! provides locality, the shortcuts provide low diameter — but the lattice
//! also reintroduces exactly the structural rigidity Jellyfish avoids.
//!
//! The paper emulates SWDC's six-interface, server-based design by using
//! switches with 1 (or 2, when oversubscribing) servers and 6 network ports.

use crate::graph::Graph;
use crate::topology::{Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The lattice underlying an SWDC topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lattice {
    /// A simple cycle; each node has 2 lattice links.
    Ring,
    /// A 2-D torus (wrap-around grid); each node has 4 lattice links.
    Torus2D,
    /// A 3-D "hex" torus as described in the SWDC paper: a stack of 2-D
    /// layers where each node additionally links to the layer above and
    /// below, giving 6 lattice links (no shortcut budget remains at degree 6;
    /// the structure itself is the topology).
    HexTorus3D,
}

impl Lattice {
    /// Lattice degree (links per node contributed by the lattice itself).
    pub fn lattice_degree(&self) -> usize {
        match self {
            Lattice::Ring => 2,
            Lattice::Torus2D => 4,
            Lattice::HexTorus3D => 6,
        }
    }
}

/// Builder for SWDC topologies.
#[derive(Debug, Clone)]
pub struct SwdcBuilder {
    lattice: Lattice,
    nodes: usize,
    degree: usize,
    servers_per_switch: usize,
    ports: usize,
    seed: u64,
}

impl SwdcBuilder {
    /// Creates a builder for an SWDC topology with `nodes` switches, total
    /// network degree `degree` and `servers_per_switch` servers each.
    /// `ports` must cover `degree + servers_per_switch`.
    pub fn new(lattice: Lattice, nodes: usize, degree: usize) -> Self {
        SwdcBuilder {
            lattice,
            nodes,
            degree,
            servers_per_switch: 1,
            ports: degree + 1,
            seed: 0x50DC,
        }
    }

    /// Sets the number of servers per switch (and grows the port budget to fit).
    pub fn servers_per_switch(mut self, servers: usize) -> Self {
        self.servers_per_switch = servers;
        self.ports = self.ports.max(self.degree + servers);
        self
    }

    /// Sets the per-switch port budget explicitly.
    pub fn ports(mut self, ports: usize) -> Self {
        self.ports = ports;
        self
    }

    /// Sets the RNG seed used for shortcut placement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of nodes actually used: lattices require compatible sizes
    /// (perfect square for the 2-D torus, a near-cubic box for the hex
    /// torus), so the builder rounds *down* to the nearest well-formed size.
    pub fn effective_nodes(&self) -> usize {
        match self.lattice {
            Lattice::Ring => self.nodes,
            Lattice::Torus2D => {
                let side = (self.nodes as f64).sqrt().floor() as usize;
                side * side
            }
            Lattice::HexTorus3D => {
                // Use an l × l × h box with h = max(2, l/2) close to the target.
                let (l, h) = Self::hex_dims(self.nodes);
                l * l * h
            }
        }
    }

    fn hex_dims(target: usize) -> (usize, usize) {
        // Choose l (layer side) and h (layers) so l*l*h is close to target.
        // Both dimensions must be at least 3 so that all six torus neighbors
        // of a node are distinct.
        let mut best = (3usize, 3usize);
        let mut best_diff = usize::MAX;
        for l in 3..=((target as f64).cbrt().ceil() as usize * 4).max(4) {
            for h in 3..=l.max(3) {
                let n = l * l * h;
                if n <= target && target - n < best_diff {
                    best = (l, h);
                    best_diff = target - n;
                }
            }
        }
        best
    }

    /// Builds the SWDC topology.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let lattice_degree = self.lattice.lattice_degree();
        if self.degree < lattice_degree {
            return Err(TopologyError::InvalidParameters(format!(
                "degree {} below the lattice degree {} of {:?}",
                self.degree, lattice_degree, self.lattice
            )));
        }
        if self.ports < self.degree + self.servers_per_switch {
            return Err(TopologyError::InvalidParameters(format!(
                "ports {} cannot fit degree {} plus {} servers",
                self.ports, self.degree, self.servers_per_switch
            )));
        }
        let n = self.effective_nodes();
        if n < 4 {
            return Err(TopologyError::Infeasible(format!(
                "lattice needs at least 4 nodes, got {n}"
            )));
        }

        let mut g = Graph::new(n);
        match self.lattice {
            Lattice::Ring => {
                for i in 0..n {
                    g.add_edge(i, (i + 1) % n);
                }
            }
            Lattice::Torus2D => {
                let side = (n as f64).sqrt().round() as usize;
                let id = |x: usize, y: usize| (y % side) * side + (x % side);
                for y in 0..side {
                    for x in 0..side {
                        g.add_edge(id(x, y), id(x + 1, y));
                        g.add_edge(id(x, y), id(x, y + 1));
                    }
                }
            }
            Lattice::HexTorus3D => {
                let (l, h) = Self::hex_dims(self.nodes);
                let id = |x: usize, y: usize, z: usize| (z % h) * l * l + (y % l) * l + (x % l);
                for z in 0..h {
                    for y in 0..l {
                        for x in 0..l {
                            g.add_edge(id(x, y, z), id(x + 1, y, z));
                            g.add_edge(id(x, y, z), id(x, y + 1, z));
                            g.add_edge(id(x, y, z), id(x, y, z + 1));
                        }
                    }
                }
            }
        }

        // Add random shortcuts until every node reaches the target degree
        // (or no further simple edge can be added).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target = self.degree;
        let mut deficient: Vec<usize> = g.nodes().filter(|&v| g.degree(v) < target).collect();
        let mut stall = 0usize;
        while deficient.len() >= 2 {
            let i = rng.gen_range(0..deficient.len());
            let mut j = rng.gen_range(0..deficient.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (deficient[i], deficient[j]);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
                stall = 0;
                deficient.retain(|&x| g.degree(x) < target);
            } else {
                stall += 1;
                if stall > 8 * deficient.len() * deficient.len() + 64 {
                    break;
                }
            }
        }

        let topo = Topology::homogeneous(g, self.ports, self.servers_per_switch)
            .with_name(format!("swdc-{:?}(n={n},degree={})", self.lattice, self.degree));
        debug_assert!(topo.check_invariants().is_ok());
        Ok(topo)
    }
}

/// Convenience constructor matching the paper's Figure 4 setup: `nodes`
/// switches, network degree 6, `servers_per_switch` servers each.
///
/// Thin wrapper over the [`crate::spec`] registry: it resolves the
/// equivalent `swdc:lattice=...,n=...,servers=...` spec, so its output is
/// identical to what any spec-driven experiment builds.
pub fn figure4_swdc(
    lattice: Lattice,
    nodes: usize,
    servers_per_switch: usize,
    seed: u64,
) -> Result<Topology, TopologyError> {
    let spec = crate::spec::TopoSpec::new("swdc")
        .with_param("lattice", crate::spec::lattice_token(lattice))
        .with_param("n", nodes)
        .with_param("servers", servers_per_switch);
    spec.build(seed).map_err(|e| match e {
        crate::spec::SpecError::Build(e) => e,
        other => TopologyError::InvalidParameters(other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::path_length_stats;

    #[test]
    fn ring_swdc_reaches_target_degree() {
        let topo = SwdcBuilder::new(Lattice::Ring, 100, 6).seed(1).build().unwrap();
        let g = topo.graph();
        assert_eq!(g.num_nodes(), 100);
        let deficient = g.nodes().filter(|&v| g.degree(v) < 6).count();
        assert!(deficient <= 1, "{deficient} nodes below degree 6");
        assert!(g.max_degree() <= 6);
        assert!(g.is_connected());
        // Ring links present.
        for i in 0..100 {
            assert!(g.has_edge(i, (i + 1) % 100));
        }
    }

    #[test]
    fn torus2d_effective_size_is_square() {
        let b = SwdcBuilder::new(Lattice::Torus2D, 484, 6);
        assert_eq!(b.effective_nodes(), 484); // 22 × 22
        let b2 = SwdcBuilder::new(Lattice::Torus2D, 500, 6);
        assert_eq!(b2.effective_nodes(), 484);
    }

    #[test]
    fn torus2d_has_lattice_neighbors() {
        let topo = SwdcBuilder::new(Lattice::Torus2D, 25, 6).seed(2).build().unwrap();
        let g = topo.graph();
        assert_eq!(g.num_nodes(), 25);
        // Node 0 = (0,0) connects to (1,0)=1, (4,0)=4, (0,1)=5, (0,4)=20.
        for v in [1, 4, 5, 20] {
            assert!(g.has_edge(0, v), "missing torus link (0,{v})");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn hex_torus_is_pure_lattice_at_degree_6() {
        let topo = SwdcBuilder::new(Lattice::HexTorus3D, 450, 6).seed(3).build().unwrap();
        let g = topo.graph();
        // Every node has exactly 6 lattice links (torus wrap in 3 dims).
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6, "node {v}");
        }
        assert!(g.is_connected());
        assert!(g.num_nodes() <= 450);
    }

    #[test]
    fn degree_below_lattice_rejected() {
        assert!(SwdcBuilder::new(Lattice::Torus2D, 100, 3).build().is_err());
        assert!(SwdcBuilder::new(Lattice::HexTorus3D, 100, 5).build().is_err());
    }

    #[test]
    fn ports_must_fit_degree_and_servers() {
        let b = SwdcBuilder::new(Lattice::Ring, 50, 6).servers_per_switch(2).ports(7);
        assert!(b.build().is_err());
        let ok = SwdcBuilder::new(Lattice::Ring, 50, 6).servers_per_switch(2);
        assert!(ok.build().is_ok());
    }

    #[test]
    fn figure4_setup_484_switches() {
        let ring = figure4_swdc(Lattice::Ring, 484, 2, 1).unwrap();
        let torus = figure4_swdc(Lattice::Torus2D, 484, 2, 1).unwrap();
        let hex = figure4_swdc(Lattice::HexTorus3D, 450, 2, 1).unwrap();
        assert_eq!(ring.num_switches(), 484);
        assert_eq!(torus.num_switches(), 484);
        assert!(hex.num_switches() <= 450);
        for t in [&ring, &torus, &hex] {
            assert!(t.graph().is_connected());
            assert_eq!(t.servers(0), 2);
        }
    }

    #[test]
    fn small_world_shortcuts_shrink_ring_diameter() {
        // A plain 100-node ring has diameter 50; with shortcuts to degree 6
        // the small-world effect brings it down by an order of magnitude.
        let topo = SwdcBuilder::new(Lattice::Ring, 100, 6).seed(7).build().unwrap();
        let stats = path_length_stats(topo.graph());
        assert!(stats.diameter <= 8, "diameter {} too large", stats.diameter);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SwdcBuilder::new(Lattice::Ring, 60, 6).seed(11).build().unwrap();
        let b = SwdcBuilder::new(Lattice::Ring, 60, 6).seed(11).build().unwrap();
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn lattice_degree_constants() {
        assert_eq!(Lattice::Ring.lattice_degree(), 2);
        assert_eq!(Lattice::Torus2D.lattice_degree(), 4);
        assert_eq!(Lattice::HexTorus3D.lattice_degree(), 6);
    }
}
