//! The [`Topology`] type: a switch-level graph plus port and server
//! accounting, the common currency of the whole workspace.
//!
//! Following the paper's model (§3), each top-of-rack switch `i` has `k_i`
//! ports, uses `r_i` of them for the switch-to-switch network and the
//! remaining `k_i - r_i` for servers. Structured topologies (fat-tree, Clos)
//! additionally tag switches with a [`SwitchKind`] so that layout and cabling
//! code can reason about layers and pods.

use crate::graph::{Graph, NodeId};
use std::fmt;

/// Role of a switch inside a structured topology.
///
/// Jellyfish topologies use only [`SwitchKind::TopOfRack`]; the fat-tree and
/// Clos generators tag aggregation and core layers so that server placement
/// and cabling distance models can distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchKind {
    /// Edge / top-of-rack switch (may have servers attached).
    TopOfRack,
    /// Aggregation-layer switch (fat-tree / Clos).
    Aggregation,
    /// Core-layer switch (fat-tree / Clos).
    Core,
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchKind::TopOfRack => write!(f, "tor"),
            SwitchKind::Aggregation => write!(f, "agg"),
            SwitchKind::Core => write!(f, "core"),
        }
    }
}

/// A violated structural invariant, reported by [`Topology::check_invariants`].
///
/// Callers can match on the failure kind instead of string-scraping: graph
/// corruption (adjacency/edge-list disagreement) is a different class of bug
/// than a switch over-committing its port budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantError {
    /// The interconnect graph's internal structures disagree (adjacency vs
    /// edge list, stale edge index, self-loop, duplicate entry).
    Graph {
        /// Description of the corrupt structure, from [`Graph::check_invariants`].
        detail: String,
    },
    /// A switch uses more ports (network links + servers) than it has.
    PortOvercommit {
        /// The offending switch.
        switch: NodeId,
        /// Ports in use (network degree + attached servers).
        used: usize,
        /// The switch's port budget.
        ports: usize,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::Graph { detail } => write!(f, "graph invariant violated: {detail}"),
            InvariantError::PortOvercommit { switch, used, ports } => {
                write!(f, "switch {switch} uses {used} ports but only has {ports}")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

/// Errors produced by topology generators and mutation procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Parameters are inconsistent (e.g. network degree exceeds port count).
    InvalidParameters(String),
    /// The requested structure cannot be built (e.g. too few switches to
    /// reach the requested degree, or an odd degree sum).
    Infeasible(String),
    /// A construction routine exhausted its retry budget.
    ConstructionFailed(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidParameters(m) => write!(f, "invalid parameters: {m}"),
            TopologyError::Infeasible(m) => write!(f, "infeasible topology: {m}"),
            TopologyError::ConstructionFailed(m) => write!(f, "construction failed: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A data center interconnect: switch-level graph, per-switch port budgets,
/// and per-switch attached-server counts.
///
/// Invariants maintained by all constructors and mutators in this crate:
///
/// * `graph.degree(i) + servers(i) <= ports(i)` for every switch `i`
///   (a switch cannot use more ports than it has);
/// * the graph is simple (no parallel switch-to-switch links).
#[derive(Debug, Clone)]
pub struct Topology {
    graph: Graph,
    ports: Vec<usize>,
    servers: Vec<usize>,
    kinds: Vec<SwitchKind>,
    name: String,
    /// Bumped by every mutation; lets CSR-snapshot holders detect staleness.
    generation: u64,
}

impl Topology {
    /// Creates a topology from parts. Panics if the vectors disagree in
    /// length with the graph or if any switch over-commits its ports.
    pub fn from_parts(
        graph: Graph,
        ports: Vec<usize>,
        servers: Vec<usize>,
        kinds: Vec<SwitchKind>,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(graph.num_nodes(), ports.len());
        assert_eq!(graph.num_nodes(), servers.len());
        assert_eq!(graph.num_nodes(), kinds.len());
        for n in graph.nodes() {
            assert!(
                graph.degree(n) + servers[n] <= ports[n],
                "switch {n} uses {} network + {} server ports but only has {}",
                graph.degree(n),
                servers[n],
                ports[n]
            );
        }
        Topology { graph, ports, servers, kinds, name: name.into(), generation: 0 }
    }

    /// Creates a homogeneous ToR-only topology: every switch has `ports`
    /// ports and `servers_per_switch` servers attached.
    pub fn homogeneous(graph: Graph, ports: usize, servers_per_switch: usize) -> Self {
        let n = graph.num_nodes();
        Topology::from_parts(
            graph,
            vec![ports; n],
            vec![servers_per_switch; n],
            vec![SwitchKind::TopOfRack; n],
            "topology",
        )
    }

    /// Human-readable name ("jellyfish", "fat-tree", ...), used in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the topology name (builder-style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The switch-level interconnect graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the interconnect graph.
    ///
    /// Callers must preserve the port-budget invariant; expansion and failure
    /// procedures in this crate do so and re-check in debug builds.
    ///
    /// Handing out mutable access counts as a mutation: the [generation
    /// counter](Topology::generation) is bumped even if the caller ends up
    /// changing nothing, so previously taken [`CsrGraph`] snapshots
    /// conservatively read as stale.
    pub fn graph_mut(&mut self) -> &mut Graph {
        self.generation += 1;
        &mut self.graph
    }

    /// Takes an immutable [`CsrGraph`] snapshot of the interconnect.
    ///
    /// This is the representation every consumer crate (routing, flow, sim)
    /// traverses; take the snapshot once per finished topology and re-take it
    /// after mutations (expansion, failures). Pair the snapshot with
    /// [`Topology::generation`] to detect staleness: a snapshot taken at
    /// generation `g` no longer reflects the topology once `generation() != g`.
    pub fn csr(&self) -> crate::csr::CsrGraph {
        crate::csr::CsrGraph::from_graph(&self.graph)
    }

    /// Mutation counter: incremented by every mutating method
    /// ([`Topology::graph_mut`], [`Topology::add_switch`],
    /// [`Topology::set_servers`], [`Topology::connect`],
    /// [`Topology::disconnect`]). A [`CsrGraph`] snapshot taken when this
    /// counter read `g` is stale — silently missing links or switches —
    /// as soon as the counter moves past `g`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of switch-to-switch links.
    pub fn num_links(&self) -> usize {
        self.graph.num_edges()
    }

    /// Total ports of switch `i`.
    pub fn ports(&self, i: NodeId) -> usize {
        self.ports[i]
    }

    /// Servers attached to switch `i`.
    pub fn servers(&self, i: NodeId) -> usize {
        self.servers[i]
    }

    /// Role of switch `i`.
    pub fn kind(&self, i: NodeId) -> SwitchKind {
        self.kinds[i]
    }

    /// Free (unused) ports on switch `i`.
    pub fn free_ports(&self, i: NodeId) -> usize {
        self.ports[i] - self.graph.degree(i) - self.servers[i]
    }

    /// Total number of servers across all switches.
    pub fn total_servers(&self) -> usize {
        self.servers.iter().sum()
    }

    /// Total number of switch ports bought (the paper's equipment-cost
    /// proxy: "Equipment Cost [#Ports]").
    pub fn total_ports(&self) -> usize {
        self.ports.iter().sum()
    }

    /// Total number of ports actually in use (network links ×2 + servers).
    pub fn used_ports(&self) -> usize {
        2 * self.graph.num_edges() + self.total_servers()
    }

    /// Switches that have servers attached (the "racks").
    pub fn racks(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|&n| self.servers[n] > 0).collect()
    }

    /// Adds a new switch with the given port budget and server count, not yet
    /// connected to anything. Returns its node id.
    pub fn add_switch(&mut self, ports: usize, servers: usize, kind: SwitchKind) -> NodeId {
        assert!(servers <= ports, "cannot attach more servers than ports");
        self.generation += 1;
        let id = self.graph.add_node();
        self.ports.push(ports);
        self.servers.push(servers);
        self.kinds.push(kind);
        id
    }

    /// Sets the number of servers attached to switch `i`.
    ///
    /// Returns an error if that would exceed the switch's free ports.
    pub fn set_servers(&mut self, i: NodeId, servers: usize) -> Result<(), TopologyError> {
        if self.graph.degree(i) + servers > self.ports[i] {
            return Err(TopologyError::InvalidParameters(format!(
                "switch {i}: {} network links + {servers} servers exceeds {} ports",
                self.graph.degree(i),
                self.ports[i]
            )));
        }
        self.servers[i] = servers;
        self.generation += 1;
        Ok(())
    }

    /// Connects switches `u` and `v` if both have a free port and are not yet
    /// adjacent. Returns `true` on success.
    pub fn connect(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.free_ports(u) == 0 || self.free_ports(v) == 0 || self.graph.has_edge(u, v)
        {
            return false;
        }
        self.generation += 1;
        self.graph.add_edge(u, v)
    }

    /// Disconnects switches `u` and `v`. Returns `true` if a link existed.
    pub fn disconnect(&mut self, u: NodeId, v: NodeId) -> bool {
        self.generation += 1;
        self.graph.remove_edge(u, v)
    }

    /// Verifies all structural invariants; used by tests and after expansion.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        self.graph.check_invariants().map_err(|detail| InvariantError::Graph { detail })?;
        for n in self.graph.nodes() {
            let used = self.graph.degree(n) + self.servers[n];
            if used > self.ports[n] {
                return Err(InvariantError::PortOvercommit {
                    switch: n,
                    used,
                    ports: self.ports[n],
                });
            }
        }
        Ok(())
    }

    /// Normalized oversubscription indicator: total server line rate divided
    /// by twice the bisection-ish network capacity per server is left to the
    /// flow crate; here we expose the raw ratio of server ports to network
    /// ports, a quick sanity metric.
    pub fn server_to_network_port_ratio(&self) -> f64 {
        let net_ports: usize = self.graph.nodes().map(|n| self.graph.degree(n)).sum();
        if net_ports == 0 {
            return f64::INFINITY;
        }
        self.total_servers() as f64 / net_ports as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        Topology::homogeneous(g, 4, 2)
    }

    #[test]
    fn homogeneous_accounting() {
        let t = triangle();
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.total_servers(), 6);
        assert_eq!(t.total_ports(), 12);
        assert_eq!(t.used_ports(), 2 * 3 + 6);
        assert_eq!(t.free_ports(0), 0);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "uses")]
    fn overcommitted_ports_panic() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        // 1 network port + 3 servers > 3 ports.
        let _ = Topology::homogeneous(g, 3, 3);
    }

    #[test]
    fn connect_respects_free_ports() {
        let g = Graph::new(3);
        let mut t = Topology::from_parts(
            g,
            vec![2, 2, 1],
            vec![1, 0, 0],
            vec![SwitchKind::TopOfRack; 3],
            "t",
        );
        assert!(t.connect(0, 1));
        // Switch 0 now has 1 link + 1 server = 2 ports used: full.
        assert!(!t.connect(0, 2));
        assert!(t.connect(1, 2));
        // Switch 2 has 1 port, now full.
        assert_eq!(t.free_ports(2), 0);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn connect_rejects_duplicates_and_self() {
        let mut t = triangle();
        assert!(!t.connect(0, 0));
        assert!(!t.connect(0, 1), "already adjacent");
    }

    #[test]
    fn set_servers_bounds_checked() {
        let mut t = triangle();
        assert!(t.set_servers(0, 2).is_ok());
        assert!(t.set_servers(0, 3).is_err());
    }

    #[test]
    fn add_switch_and_connect() {
        let mut t = triangle();
        let s = t.add_switch(4, 1, SwitchKind::TopOfRack);
        assert_eq!(s, 3);
        assert_eq!(t.free_ports(s), 3);
        // Existing switches are full (4 ports = 2 links + 2 servers).
        assert!(!t.connect(s, 0));
        t.set_servers(0, 1).unwrap();
        assert!(t.connect(s, 0));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn racks_and_ratio() {
        let mut t = triangle();
        t.set_servers(1, 0).unwrap();
        assert_eq!(t.racks(), vec![0, 2]);
        // 4 servers, 6 network port-endpoints.
        assert!((t.server_to_network_port_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn disconnect_frees_ports() {
        let mut t = triangle();
        assert!(t.disconnect(0, 1));
        assert_eq!(t.free_ports(0), 1);
        assert_eq!(t.free_ports(1), 1);
        assert!(!t.disconnect(0, 1));
    }

    #[test]
    fn kind_display() {
        assert_eq!(SwitchKind::TopOfRack.to_string(), "tor");
        assert_eq!(SwitchKind::Aggregation.to_string(), "agg");
        assert_eq!(SwitchKind::Core.to_string(), "core");
    }

    #[test]
    fn error_display() {
        let e = TopologyError::Infeasible("odd degree sum".into());
        assert!(e.to_string().contains("odd degree sum"));
    }

    #[test]
    fn every_mutator_bumps_the_generation() {
        let mut t = triangle();
        let g0 = t.generation();
        t.disconnect(0, 1);
        assert!(t.generation() > g0, "disconnect must bump the generation");
        let g1 = t.generation();
        t.connect(0, 1);
        assert!(t.generation() > g1, "connect must bump the generation");
        let g2 = t.generation();
        t.set_servers(0, 1).unwrap();
        assert!(t.generation() > g2, "set_servers must bump the generation");
        let g3 = t.generation();
        t.add_switch(4, 0, SwitchKind::TopOfRack);
        assert!(t.generation() > g3, "add_switch must bump the generation");
        let g4 = t.generation();
        // graph_mut is conservative: handing out &mut Graph counts as a
        // mutation even if the caller changes nothing.
        let _ = t.graph_mut();
        assert!(t.generation() > g4, "graph_mut must bump the generation");
        // Read-only accessors do not bump.
        let g5 = t.generation();
        let _ = t.csr();
        let _ = t.free_ports(0);
        assert_eq!(t.generation(), g5);
    }

    #[test]
    fn failed_connect_still_reads_as_mutation_conservatively() {
        let mut t = triangle();
        let g0 = t.generation();
        // Already adjacent: connect returns false. A rejected no-op connect
        // does not touch the graph, but `connect` pre-checks before bumping,
        // so the generation stays put here.
        assert!(!t.connect(0, 1));
        assert_eq!(t.generation(), g0);
    }

    #[test]
    fn invariant_error_is_matchable_by_kind() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let mut t =
            Topology::from_parts(g, vec![4, 4], vec![1, 1], vec![SwitchKind::TopOfRack; 2], "t");
        assert_eq!(t.check_invariants(), Ok(()));
        // Over-commit switch 0 behind the checker's back.
        for _ in 0..4 {
            let v = t.graph_mut().add_node();
            t.ports.push(1);
            t.servers.push(0);
            t.kinds.push(SwitchKind::TopOfRack);
            t.graph_mut().add_edge(0, v);
        }
        match t.check_invariants() {
            Err(InvariantError::PortOvercommit { switch: 0, used, ports: 4 }) => {
                assert!(used > 4);
            }
            other => panic!("expected PortOvercommit for switch 0, got {other:?}"),
        }
        let msg = t.check_invariants().unwrap_err().to_string();
        assert!(msg.contains("switch 0"), "display should name the switch: {msg}");
    }
}
