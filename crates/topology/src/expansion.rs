//! Incremental expansion of Jellyfish topologies (paper §4.2).
//!
//! To add a new rack (a ToR switch `u` with servers attached), pick a random
//! existing link `(v, w)` such that `u` is connected to neither endpoint,
//! remove it, and add `(u, v)` and `(u, w)`, consuming two ports on `u`.
//! Repeat until `u`'s network ports are exhausted (or a single odd port
//! remains). The same procedure with zero servers adds pure network capacity.
//!
//! The procedures here mutate a [`Topology`] in place, never touch more
//! cables than the ports being added (the paper's rewiring bound), and keep
//! the port-budget invariants intact.

use crate::graph::NodeId;
use crate::topology::{SwitchKind, Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a single switch-incorporation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpansionReport {
    /// Node id of the newly added switch.
    pub new_switch: NodeId,
    /// Links that were removed to make room (each provided two attachment
    /// points for the new switch).
    pub removed_links: Vec<(NodeId, NodeId)>,
    /// Links that were added (all incident to the new switch).
    pub added_links: Vec<(NodeId, NodeId)>,
    /// Network ports on the new switch that could not be matched (0 or 1 in a
    /// healthy expansion; more if the existing network is too small).
    pub unmatched_ports: usize,
}

impl ExpansionReport {
    /// Number of cable operations: one disconnect per removed link plus one
    /// connect per added link. This is the quantity the paper argues stays
    /// proportional to the ports being added.
    pub fn cable_operations(&self) -> usize {
        self.removed_links.len() + self.added_links.len()
    }
}

/// Adds one new switch with `ports` total ports, `servers` of them attached
/// to servers and the rest wired into the network via the random link-splice
/// procedure.
///
/// Returns a report describing exactly which cables changed.
pub fn add_switch(
    topo: &mut Topology,
    ports: usize,
    servers: usize,
    seed: u64,
) -> Result<ExpansionReport, TopologyError> {
    if servers > ports {
        return Err(TopologyError::InvalidParameters(format!(
            "cannot attach {servers} servers to a {ports}-port switch"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let u = topo.add_switch(ports, servers, SwitchKind::TopOfRack);
    let target_degree = ports - servers;
    let mut removed = Vec::new();
    let mut added = Vec::new();

    // While at least two network ports remain free on u, splice into a random
    // existing link whose endpoints are both new neighbors for u.
    while topo.free_ports(u) >= 2 {
        let Some((v, w)) = pick_splice_link(topo, u, &mut rng) else {
            break;
        };
        topo.disconnect(v, w);
        let ok1 = topo.connect(u, v);
        let ok2 = topo.connect(u, w);
        debug_assert!(ok1 && ok2, "splice endpoints must accept the new links");
        removed.push((v, w));
        added.push((u, v));
        added.push((u, w));
    }

    // A single remaining port: try to match it against any other switch with
    // a free port (the paper: "could be matched with another free port on an
    // existing rack, used for a server, or left free").
    if topo.free_ports(u) == 1 {
        let candidates: Vec<NodeId> = topo
            .graph()
            .nodes()
            .filter(|&v| v != u && topo.free_ports(v) >= 1 && !topo.graph().has_edge(u, v))
            .collect();
        if !candidates.is_empty() {
            let v = candidates[rng.gen_range(0..candidates.len())];
            if topo.connect(u, v) {
                added.push((u, v));
            }
        }
    }

    let unmatched = target_degree.saturating_sub(topo.graph().degree(u));
    debug_assert!(topo.check_invariants().is_ok());
    Ok(ExpansionReport {
        new_switch: u,
        removed_links: removed,
        added_links: added,
        unmatched_ports: unmatched,
    })
}

/// Adds `count` new racks, each a switch with `ports` ports and `servers`
/// servers, one after another. Returns one report per rack.
pub fn add_racks(
    topo: &mut Topology,
    count: usize,
    ports: usize,
    servers: usize,
    seed: u64,
) -> Result<Vec<ExpansionReport>, TopologyError> {
    let mut reports = Vec::with_capacity(count);
    for i in 0..count {
        reports.push(add_switch(topo, ports, servers, seed.wrapping_add(i as u64))?);
    }
    Ok(reports)
}

/// Adds a switch carrying no servers: pure network-capacity expansion
/// (all ports join the interconnect). This is the "adding only switches"
/// expansion avenue the paper uses in the LEGUP comparison.
pub fn add_network_switch(
    topo: &mut Topology,
    ports: usize,
    seed: u64,
) -> Result<ExpansionReport, TopologyError> {
    add_switch(topo, ports, 0, seed)
}

/// Converts spare server ports into network ports on an existing switch by
/// detaching `count` servers and splicing the freed ports into the network.
/// Used to model capacity upgrades without buying hardware.
pub fn convert_server_ports_to_network(
    topo: &mut Topology,
    switch: NodeId,
    count: usize,
    seed: u64,
) -> Result<Vec<(NodeId, NodeId)>, TopologyError> {
    if topo.servers(switch) < count {
        return Err(TopologyError::InvalidParameters(format!(
            "switch {switch} only has {} servers attached",
            topo.servers(switch)
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    topo.set_servers(switch, topo.servers(switch) - count)?;
    let mut added = Vec::new();
    while topo.free_ports(switch) >= 2 {
        let Some((v, w)) = pick_splice_link(topo, switch, &mut rng) else {
            break;
        };
        topo.disconnect(v, w);
        topo.connect(switch, v);
        topo.connect(switch, w);
        added.push((switch, v));
        added.push((switch, w));
    }
    debug_assert!(topo.check_invariants().is_ok());
    Ok(added)
}

/// Picks a uniform-random existing link `(v, w)` such that `u` is adjacent to
/// neither `v` nor `w` and neither endpoint is `u` itself.
fn pick_splice_link(topo: &Topology, u: NodeId, rng: &mut StdRng) -> Option<(NodeId, NodeId)> {
    let g = topo.graph();
    let m = g.num_edges();
    if m == 0 {
        return None;
    }
    for _ in 0..64 {
        let e = g.edge_at(rng.gen_range(0..m));
        if e.a != u && e.b != u && !g.has_edge(u, e.a) && !g.has_edge(u, e.b) {
            return Some((e.a, e.b));
        }
    }
    let candidates: Vec<_> = g
        .edges()
        .filter(|e| e.a != u && e.b != u && !g.has_edge(u, e.a) && !g.has_edge(u, e.b))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let e = candidates[rng.gen_range(0..candidates.len())];
    Some((e.a, e.b))
}

/// Grows a Jellyfish topology through a whole schedule of increments, as the
/// Figure 6 experiment does (start at `initial` switches, add `step` switches
/// at a time until `target`). Returns the topology after each stage,
/// including the initial one.
pub fn grow_schedule(
    initial: usize,
    target: usize,
    step: usize,
    ports: usize,
    network_degree: usize,
    seed: u64,
) -> Result<Vec<Topology>, TopologyError> {
    if step == 0 || initial == 0 || target < initial {
        return Err(TopologyError::InvalidParameters(
            "need initial >= 1, step >= 1 and target >= initial".into(),
        ));
    }
    let servers = ports - network_degree;
    let mut topo =
        crate::rrg::JellyfishBuilder::new(initial, ports, network_degree).seed(seed).build()?;
    let mut stages = vec![topo.clone()];
    let mut current = initial;
    let mut stage_idx = 0u64;
    while current < target {
        let add = step.min(target - current);
        add_racks(&mut topo, add, ports, servers, seed ^ (0x9E37_79B9 + stage_idx))?;
        current += add;
        stage_idx += 1;
        stages.push(topo.clone());
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrg::JellyfishBuilder;

    fn base_topology() -> Topology {
        JellyfishBuilder::new(30, 12, 8).seed(17).build().unwrap()
    }

    #[test]
    fn add_switch_preserves_degrees_of_existing_switches() {
        let mut topo = base_topology();
        let before: Vec<usize> = topo.graph().nodes().map(|v| topo.graph().degree(v)).collect();
        let report = add_switch(&mut topo, 12, 4, 7).unwrap();
        assert_eq!(report.new_switch, 30);
        // Every pre-existing switch keeps exactly its old network degree: the
        // splice removes one of its links but immediately replaces it.
        for (v, &d) in before.iter().enumerate() {
            assert_eq!(topo.graph().degree(v), d, "switch {v} degree changed");
        }
        assert_eq!(topo.graph().degree(30), 8);
        assert_eq!(report.unmatched_ports, 0);
        assert!(topo.graph().is_connected());
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn add_switch_rewiring_is_bounded_by_added_ports() {
        let mut topo = base_topology();
        let report = add_switch(&mut topo, 12, 4, 3).unwrap();
        // 8 new network ports => at most 4 removed links and 8 added links.
        assert!(report.removed_links.len() <= 4);
        assert!(report.added_links.len() <= 8);
        assert!(report.cable_operations() <= 12);
    }

    #[test]
    fn add_rack_increases_server_count() {
        let mut topo = base_topology();
        let servers_before = topo.total_servers();
        add_switch(&mut topo, 12, 4, 5).unwrap();
        assert_eq!(topo.total_servers(), servers_before + 4);
    }

    #[test]
    fn add_network_switch_has_no_servers() {
        let mut topo = base_topology();
        let servers_before = topo.total_servers();
        let links_before = topo.num_links();
        let report = add_network_switch(&mut topo, 12, 5).unwrap();
        assert_eq!(topo.total_servers(), servers_before);
        assert_eq!(topo.servers(report.new_switch), 0);
        assert_eq!(topo.graph().degree(report.new_switch), 12);
        // Each splice removes one link and adds two: net +1 link per pair of ports.
        assert_eq!(topo.num_links(), links_before + 6);
    }

    #[test]
    fn repeated_expansion_stays_connected_and_regular() {
        let mut topo = JellyfishBuilder::new(20, 12, 8).seed(1).build().unwrap();
        for i in 0..20 {
            add_switch(&mut topo, 12, 4, 1000 + i).unwrap();
            assert!(topo.graph().is_connected(), "disconnected after expansion {i}");
        }
        assert_eq!(topo.num_switches(), 40);
        // All switches should have full network degree (even total port count).
        let deficient = topo.graph().nodes().filter(|&v| topo.graph().degree(v) < 8).count();
        assert!(deficient <= 1);
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn heterogeneous_expansion_larger_switch() {
        let mut topo = base_topology();
        let report = add_switch(&mut topo, 24, 6, 9).unwrap();
        assert_eq!(topo.ports(report.new_switch), 24);
        assert_eq!(topo.servers(report.new_switch), 6);
        assert_eq!(topo.graph().degree(report.new_switch), 18);
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn expansion_into_tiny_network_reports_unmatched_ports() {
        // A 3-switch triangle cannot absorb a new switch wanting degree 8:
        // after splicing into each disjoint link the candidates run out.
        let mut topo = JellyfishBuilder::new(4, 10, 3).seed(2).build().unwrap();
        let report = add_switch(&mut topo, 10, 0, 3).unwrap();
        assert!(report.unmatched_ports > 0);
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn convert_server_ports_adds_network_links() {
        let mut topo = base_topology();
        let degree_before = topo.graph().degree(0);
        let links = convert_server_ports_to_network(&mut topo, 0, 2, 3).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(topo.graph().degree(0), degree_before + 2);
        assert_eq!(topo.servers(0), 2);
        assert!(convert_server_ports_to_network(&mut topo, 0, 10, 3).is_err());
    }

    #[test]
    fn add_racks_produces_report_per_rack() {
        let mut topo = base_topology();
        let reports = add_racks(&mut topo, 5, 12, 4, 77).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(topo.num_switches(), 35);
    }

    #[test]
    fn grow_schedule_matches_fig6_setup() {
        // Figure 6: 20 -> 160 switches in increments of 20, 12-port switches,
        // 4 servers each (r = 8).
        let stages = grow_schedule(20, 60, 20, 12, 8, 6).unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].num_switches(), 20);
        assert_eq!(stages[1].num_switches(), 40);
        assert_eq!(stages[2].num_switches(), 60);
        for s in &stages {
            assert!(s.graph().is_connected());
            assert_eq!(s.total_servers(), s.num_switches() * 4);
        }
    }

    #[test]
    fn grow_schedule_rejects_bad_parameters() {
        assert!(grow_schedule(0, 10, 5, 12, 8, 0).is_err());
        assert!(grow_schedule(10, 5, 5, 12, 8, 0).is_err());
        assert!(grow_schedule(10, 20, 0, 12, 8, 0).is_err());
    }

    #[test]
    fn invalid_server_count_rejected() {
        let mut topo = base_topology();
        assert!(add_switch(&mut topo, 4, 5, 0).is_err());
    }
}
