//! Benchmark graphs approximating the best-known degree-diameter graphs
//! (paper §4.1, Figure 3).
//!
//! The paper benchmarks Jellyfish against the best-known graphs from the
//! degree-diameter problem [Comellas & Delorme]. Those graphs are an external
//! dataset we do not have, so — per the substitution rule in DESIGN.md — we
//! generate benchmark graphs at the paper's nine (switches, ports, network
//! degree) points ourselves:
//!
//! * where a classical optimal construction exists at the exact size (e.g.
//!   the Petersen graph, complete graphs, cycles) we build it directly;
//! * otherwise we run a simulated-annealing optimizer that minimizes average
//!   shortest-path length (the quantity that actually drives throughput)
//!   subject to the degree bound, starting from a random regular graph.
//!
//! The result is a graph that is meaningfully better-optimized than a random
//! one — exactly the role the degree-diameter graphs play in Figure 3.

use crate::graph::Graph;
use crate::properties::path_length_stats;
use crate::rrg::JellyfishBuilder;
use crate::topology::{Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The nine configurations of Figure 3 as `(switches, ports, network_degree)`.
pub const FIGURE3_CONFIGS: [(usize, usize, usize); 9] = [
    (132, 4, 3),
    (72, 7, 5),
    (98, 6, 4),
    (50, 11, 7),
    (111, 8, 6),
    (212, 7, 5),
    (168, 10, 7),
    (104, 16, 11),
    (198, 24, 16),
];

/// Parameters of the simulated-annealing optimizer.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Number of proposed rewiring moves.
    pub iterations: usize,
    /// Initial temperature (in units of average-path-length delta).
    pub initial_temperature: f64,
    /// Multiplicative cooling applied every `iterations / 100` moves.
    pub cooling: f64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams { iterations: 4000, initial_temperature: 0.05, cooling: 0.96 }
    }
}

/// Builds a low-average-path-length `degree`-regular benchmark graph on `n`
/// nodes by simulated annealing from a random regular graph.
///
/// The per-switch port count is `ports`; the remaining `ports - degree`
/// ports carry servers, mirroring how the paper attaches servers to the
/// degree-diameter graphs.
pub fn optimized_graph(
    n: usize,
    ports: usize,
    degree: usize,
    params: AnnealParams,
    seed: u64,
) -> Result<Topology, TopologyError> {
    // Special-case exact classical optima at small sizes.
    if let Some(g) = classical_graph(n, degree) {
        let topo = Topology::homogeneous(g, ports, ports - degree)
            .with_name(format!("degree-diameter-classical(n={n},d={degree})"));
        return Ok(topo);
    }
    let start = JellyfishBuilder::new(n, ports, degree).seed(seed).build()?;
    let mut graph = start.graph().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11E);
    let mut current = path_length_stats(&graph).mean;
    let mut best_graph = graph.clone();
    let mut best = current;
    let mut temperature = params.initial_temperature;
    let cool_every = (params.iterations / 100).max(1);

    for it in 0..params.iterations {
        // Propose a double edge swap: (a,b),(c,d) -> (a,c),(b,d). Degree is
        // preserved; reject if it creates parallel edges or disconnects.
        let m = graph.num_edges();
        if m < 2 {
            break;
        }
        let e1 = graph.edge_at(rng.gen_range(0..m));
        let e2 = graph.edge_at(rng.gen_range(0..m));
        let (a, b, c, d) = (e1.a, e1.b, e2.a, e2.b);
        if a == c || a == d || b == c || b == d {
            continue;
        }
        if graph.has_edge(a, c) || graph.has_edge(b, d) {
            continue;
        }
        graph.remove_edge(a, b);
        graph.remove_edge(c, d);
        graph.add_edge(a, c);
        graph.add_edge(b, d);
        let candidate =
            if graph.is_connected() { path_length_stats(&graph).mean } else { f64::INFINITY };
        let delta = candidate - current;
        let accept = delta < 0.0
            || (temperature > 0.0
                && candidate.is_finite()
                && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            current = candidate;
            if current < best {
                best = current;
                best_graph = graph.clone();
            }
        } else {
            // Undo the swap.
            graph.remove_edge(a, c);
            graph.remove_edge(b, d);
            graph.add_edge(a, b);
            graph.add_edge(c, d);
        }
        if it % cool_every == 0 {
            temperature *= params.cooling;
        }
    }

    let topo = Topology::homogeneous(best_graph, ports, ports - degree)
        .with_name(format!("degree-diameter-annealed(n={n},d={degree})"));
    debug_assert!(topo.check_invariants().is_ok());
    Ok(topo)
}

/// Returns a classical optimal/near-optimal degree-diameter construction at
/// the exact `(n, degree)` point, if one is built in.
fn classical_graph(n: usize, degree: usize) -> Option<Graph> {
    match (n, degree) {
        // Petersen graph: 10 nodes, degree 3, diameter 2 (optimal Moore graph).
        (10, 3) => {
            let mut g = Graph::new(10);
            // Outer 5-cycle.
            for i in 0..5 {
                g.add_edge(i, (i + 1) % 5);
            }
            // Inner pentagram.
            for i in 0..5 {
                g.add_edge(5 + i, 5 + (i + 2) % 5);
            }
            // Spokes.
            for i in 0..5 {
                g.add_edge(i, 5 + i);
            }
            Some(g)
        }
        // Complete graph when degree = n-1.
        (n, d) if d + 1 == n && n >= 2 => {
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    g.add_edge(u, v);
                }
            }
            Some(g)
        }
        // Cycle for degree 2.
        (n, 2) if n >= 3 => {
            let mut g = Graph::new(n);
            for i in 0..n {
                g.add_edge(i, (i + 1) % n);
            }
            Some(g)
        }
        _ => None,
    }
}

/// Builds the benchmark graph and a same-equipment Jellyfish topology for one
/// Figure 3 configuration, attaching `servers_per_switch` servers to every
/// switch of both. Returns `(benchmark, jellyfish)`.
pub fn figure3_pair(
    switches: usize,
    ports: usize,
    degree: usize,
    servers_per_switch: usize,
    seed: u64,
) -> Result<(Topology, Topology), TopologyError> {
    if degree + servers_per_switch > ports {
        return Err(TopologyError::InvalidParameters(format!(
            "degree {degree} + servers {servers_per_switch} exceeds {ports} ports"
        )));
    }
    let mut bench = optimized_graph(switches, ports, degree, AnnealParams::default(), seed)?;
    let mut jelly = JellyfishBuilder::new(switches, ports, degree).seed(seed ^ 0xF00D).build()?;
    for topo in [&mut bench, &mut jelly] {
        for v in 0..switches {
            topo.set_servers(v, servers_per_switch).expect("server count validated above");
        }
    }
    Ok((bench, jelly))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn petersen_graph_is_moore_optimal() {
        let g = classical_graph(10, 3).unwrap();
        assert_eq!(g.num_edges(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        let stats = path_length_stats(&g);
        assert_eq!(stats.diameter, 2);
        // ASPL of the Petersen graph is (3*1 + 6*2)/9 = 5/3.
        assert!((stats.mean - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complete_and_cycle_classical_cases() {
        let k5 = classical_graph(5, 4).unwrap();
        assert_eq!(k5.num_edges(), 10);
        assert_eq!(path_length_stats(&k5).diameter, 1);
        let c8 = classical_graph(8, 2).unwrap();
        assert_eq!(path_length_stats(&c8).diameter, 4);
        assert!(classical_graph(20, 7).is_none());
    }

    #[test]
    fn annealing_improves_or_matches_random_graph() {
        let n = 40;
        let degree = 4;
        let random = JellyfishBuilder::new(n, 6, degree).seed(8).build().unwrap();
        let random_aspl = path_length_stats(random.graph()).mean;
        let params = AnnealParams { iterations: 1500, ..AnnealParams::default() };
        let optimized = optimized_graph(n, 6, degree, params, 8).unwrap();
        let optimized_aspl = path_length_stats(optimized.graph()).mean;
        assert!(
            optimized_aspl <= random_aspl + 1e-9,
            "annealing made the graph worse: {optimized_aspl} vs {random_aspl}"
        );
        // Degree bound respected.
        for v in optimized.graph().nodes() {
            assert!(optimized.graph().degree(v) <= degree);
        }
        assert!(optimized.graph().is_connected());
    }

    #[test]
    fn optimized_graph_uses_classical_construction_when_available() {
        let topo = optimized_graph(10, 5, 3, AnnealParams::default(), 0).unwrap();
        assert!(topo.name().contains("classical"));
        assert_eq!(path_length_stats(topo.graph()).diameter, 2);
        assert_eq!(topo.total_servers(), 10 * 2);
    }

    #[test]
    fn figure3_configs_are_the_paper_points() {
        assert_eq!(FIGURE3_CONFIGS.len(), 9);
        assert_eq!(FIGURE3_CONFIGS[0], (132, 4, 3));
        assert_eq!(FIGURE3_CONFIGS[8], (198, 24, 16));
        // Every configuration leaves at least one port for servers.
        for &(_, ports, degree) in &FIGURE3_CONFIGS {
            assert!(ports > degree);
        }
    }

    #[test]
    fn figure3_pair_same_equipment() {
        let (bench, jelly) = figure3_pair(50, 11, 7, 2, 3).unwrap();
        assert_eq!(bench.num_switches(), jelly.num_switches());
        assert_eq!(bench.total_ports(), jelly.total_ports());
        assert_eq!(bench.total_servers(), 100);
        assert_eq!(jelly.total_servers(), 100);
        assert!(bench.graph().is_connected());
        assert!(jelly.graph().is_connected());
    }

    #[test]
    fn figure3_pair_rejects_overfull_switches() {
        assert!(figure3_pair(50, 11, 7, 5, 3).is_err());
    }
}
