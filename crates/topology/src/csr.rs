//! Immutable compressed-sparse-row (CSR) snapshot of a [`Graph`].
//!
//! The mutable [`Graph`] is the right representation while a topology is
//! being *constructed* (random wiring, incremental expansion, failure
//! injection all add and remove edges), but it is the wrong representation
//! for the paper's evaluation loops: every figure hammers graph traversal,
//! and a `Vec<Vec<NodeId>>` adjacency chases one pointer per visited node
//! while per-link state lives in `HashMap<(u, v), _>` lookups.
//!
//! [`CsrGraph`] is the read-only contract between the topology layer and
//! every consumer (`jellyfish-routing`, `jellyfish-flow`, `jellyfish-sim`,
//! the figure harness): build it once per finished topology via
//! [`Topology::csr`](crate::Topology::csr) or [`CsrGraph::from_graph`], then
//! traverse flat arrays.
//!
//! Layout:
//!
//! * `row_offsets[u] .. row_offsets[u + 1]` indexes the **arcs** (directed
//!   half-edges) leaving `u`; `neighbors[]` holds the targets, sorted
//!   ascending within each row.
//! * Each arc position is a dense **arc id** in `0..2E`. Per-directed-link
//!   state (flow solver lengths, simulator queues, path counters) indexes a
//!   flat `Vec` by arc id instead of hashing a node pair.
//! * `arc_edge[]` maps every arc to its undirected **edge id** in `0..E`.
//!   Edge ids are assigned in lexicographic `(a, b)` order, so they are a
//!   pure function of the edge *set* — independent of the mutation history
//!   of the `Graph` the snapshot was taken from.
//!
//! The snapshot is intentionally immutable: topology mutations (expansion,
//! failures) happen on `Graph`, after which consumers take a fresh snapshot.

use crate::graph::{Graph, NodeId};

/// Dense identifier of a directed arc (a CSR adjacency position), in
/// `0..CsrGraph::num_arcs()`. The arc `u -> v` and its reverse `v -> u` have
/// distinct ids.
pub type ArcId = usize;

/// Dense identifier of an undirected edge, in `0..CsrGraph::num_edges()`.
pub type EdgeId = usize;

/// An immutable compressed-sparse-row graph snapshot. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_offsets[u]..row_offsets[u+1]` spans node `u`'s arcs. Length n+1.
    row_offsets: Vec<u32>,
    /// Arc targets, sorted ascending within each row. Length 2E.
    neighbors: Vec<u32>,
    /// Undirected edge id of each arc. Length 2E.
    arc_edge: Vec<u32>,
    /// Edge endpoints `(a, b)` with `a < b`, indexed by edge id. Length E.
    edges: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// Takes an immutable snapshot of `graph`.
    ///
    /// Node ids are preserved. Edge ids are assigned in lexicographic
    /// `(min, max)` endpoint order, so two `Graph`s with the same edge set
    /// produce identical snapshots regardless of insertion/removal history.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        assert!(n < u32::MAX as usize, "graph too large for u32 CSR indices");
        assert!(2 * graph.num_edges() <= u32::MAX as usize, "graph too large for u32 CSR arc ids");
        let mut edges: Vec<(u32, u32)> = graph.edges().map(|e| (e.a as u32, e.b as u32)).collect();
        edges.sort_unstable();

        let mut row_offsets = vec![0u32; n + 1];
        for &(a, b) in &edges {
            row_offsets[a as usize + 1] += 1;
            row_offsets[b as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let num_arcs = row_offsets[n] as usize;
        let mut neighbors = vec![0u32; num_arcs];
        let mut arc_edge = vec![0u32; num_arcs];
        let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
        // Edges are sorted by (a, b); for any node u all partners y < u are
        // visited (as edges (y, u)) before all partners x > u (as edges
        // (u, x)), and each group in ascending order, so every row comes out
        // sorted without a separate sort pass.
        for (eid, &(a, b)) in edges.iter().enumerate() {
            let slot_a = cursor[a as usize] as usize;
            neighbors[slot_a] = b;
            arc_edge[slot_a] = eid as u32;
            cursor[a as usize] += 1;
            let slot_b = cursor[b as usize] as usize;
            neighbors[slot_b] = a;
            arc_edge[slot_b] = eid as u32;
            cursor[b as usize] += 1;
        }
        CsrGraph { row_offsets, neighbors, arc_edge, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed arcs (always `2 * num_edges()`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Node ids `0..num_nodes()`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.row_offsets[u + 1] - self.row_offsets[u]) as usize
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Neighbors of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        &self.neighbors[self.arc_range(u)]
    }

    /// The arc-id range of node `u`: arc `a` in this range points from `u`
    /// to `self.arc_target(a)`.
    #[inline]
    pub fn arc_range(&self, u: NodeId) -> std::ops::Range<ArcId> {
        self.row_offsets[u] as usize..self.row_offsets[u + 1] as usize
    }

    /// Target node of an arc.
    #[inline]
    pub fn arc_target(&self, arc: ArcId) -> NodeId {
        self.neighbors[arc] as NodeId
    }

    /// Source node of an arc (binary search over the row offsets).
    pub fn arc_source(&self, arc: ArcId) -> NodeId {
        debug_assert!(arc < self.num_arcs());
        self.row_offsets.partition_point(|&off| off as usize <= arc) - 1
    }

    /// Dense id of the arc `u -> v`, or `None` when `(u, v)` is not a link.
    /// O(log degree(u)).
    #[inline]
    pub fn arc_index(&self, u: NodeId, v: NodeId) -> Option<ArcId> {
        let range = self.arc_range(u);
        let row = &self.neighbors[range.clone()];
        row.binary_search(&(v as u32)).ok().map(|i| range.start + i)
    }

    /// Id of the arc `v -> u` given the arc `u -> v`.
    pub fn reverse_arc(&self, arc: ArcId) -> ArcId {
        let u = self.arc_source(arc);
        let v = self.arc_target(arc);
        self.arc_index(v, u).expect("reverse arc exists by symmetry")
    }

    /// Undirected edge id of an arc.
    #[inline]
    pub fn edge_of_arc(&self, arc: ArcId) -> EdgeId {
        self.arc_edge[arc] as EdgeId
    }

    /// Endpoints `(a, b)` with `a < b` of an undirected edge.
    #[inline]
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let (a, b) = self.edges[edge];
        (a as NodeId, b as NodeId)
    }

    /// Undirected edge id of the link `{u, v}`, if present.
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.arc_index(u, v).map(|a| self.edge_of_arc(a))
    }

    /// Whether `u` and `v` are adjacent. O(log degree(u)).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over all undirected edges as `(a, b)` pairs with `a < b`, in
    /// edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().map(|&(a, b)| (a as NodeId, b as NodeId))
    }

    /// Single-source BFS hop distances; `usize::MAX` when unreachable.
    ///
    /// Convenience wrapper over the direction-optimizing kernel in
    /// [`crate::bfs`] — the one BFS implementation in the workspace. Hot
    /// all-pairs sweeps should call [`crate::bfs::bfs_into`] directly with a
    /// reused row buffer and [`crate::bfs::BfsScratch`] instead of paying
    /// this allocation per source.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<usize> {
        crate::bfs::bfs_distances_u32(self, source)
            .into_iter()
            .map(|d| if d == crate::bfs::UNREACHED { usize::MAX } else { d as usize })
            .collect()
    }

    /// Whether every node can reach every other node (empty and single-node
    /// graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Number of undirected edges crossing the cut `(set, complement)`;
    /// `in_set[v]` must be `true` exactly for nodes in the set. Dispatches
    /// to the branch-free chunked scan in [`crate::kernels`] under the
    /// `simd` feature.
    pub fn cut_size(&self, in_set: &[bool]) -> usize {
        assert_eq!(in_set.len(), self.num_nodes());
        crate::kernels::cut_size(&self.edges, in_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn snapshot_matches_graph_shape() {
        let g = ring(6);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_nodes(), 6);
        assert_eq!(csr.num_edges(), 6);
        assert_eq!(csr.num_arcs(), 12);
        for u in csr.nodes() {
            assert_eq!(csr.degree(u), g.degree(u));
            let mut expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            expected.sort_unstable();
            assert_eq!(csr.neighbors(u), expected.as_slice());
        }
    }

    #[test]
    fn rows_are_sorted_and_arc_index_finds_them() {
        let mut g = Graph::new(5);
        // Insert in scrambled order; rows must still come out sorted.
        g.add_edge(3, 1);
        g.add_edge(0, 4);
        g.add_edge(0, 1);
        g.add_edge(2, 0);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.neighbors(0), &[1, 2, 4]);
        for u in csr.nodes() {
            for arc in csr.arc_range(u) {
                let v = csr.arc_target(arc);
                assert_eq!(csr.arc_index(u, v), Some(arc));
                assert_eq!(csr.arc_source(arc), u);
            }
        }
        assert_eq!(csr.arc_index(0, 3), None);
        assert!(!csr.has_edge(0, 3));
        assert!(csr.has_edge(1, 3));
        assert!(!csr.has_edge(2, 2));
    }

    #[test]
    fn edge_ids_are_history_independent() {
        // Same edge set, different construction history.
        let mut a = Graph::new(4);
        a.add_edge(0, 1);
        a.add_edge(1, 2);
        a.add_edge(2, 3);
        let mut b = Graph::new(4);
        b.add_edge(2, 3);
        b.add_edge(0, 3); // removed below
        b.add_edge(1, 2);
        b.add_edge(0, 1);
        b.remove_edge(0, 3);
        assert_eq!(CsrGraph::from_graph(&a), CsrGraph::from_graph(&b));
    }

    #[test]
    fn arc_and_edge_mappings_are_consistent() {
        let g = ring(8);
        let csr = CsrGraph::from_graph(&g);
        for edge in 0..csr.num_edges() {
            let (a, b) = csr.edge_endpoints(edge);
            assert!(a < b);
            assert_eq!(csr.edge_index(a, b), Some(edge));
            assert_eq!(csr.edge_index(b, a), Some(edge));
            let fwd = csr.arc_index(a, b).unwrap();
            let rev = csr.arc_index(b, a).unwrap();
            assert_ne!(fwd, rev);
            assert_eq!(csr.edge_of_arc(fwd), edge);
            assert_eq!(csr.edge_of_arc(rev), edge);
            assert_eq!(csr.reverse_arc(fwd), rev);
            assert_eq!(csr.reverse_arc(rev), fwd);
        }
        // Edge ids are lexicographic in (a, b).
        let endpoints: Vec<_> = (0..csr.num_edges()).map(|e| csr.edge_endpoints(e)).collect();
        let mut sorted = endpoints.clone();
        sorted.sort_unstable();
        assert_eq!(endpoints, sorted);
    }

    #[test]
    fn bfs_and_connectivity() {
        let csr = CsrGraph::from_graph(&ring(6));
        let d = csr.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert!(csr.is_connected());
        let mut split = Graph::new(4);
        split.add_edge(0, 1);
        split.add_edge(2, 3);
        let csr2 = CsrGraph::from_graph(&split);
        assert!(!csr2.is_connected());
        assert_eq!(csr2.bfs_distances(0)[2], usize::MAX);
    }

    #[test]
    fn cut_size_matches_graph() {
        let g = ring(6);
        let csr = CsrGraph::from_graph(&g);
        let in_set = [true, true, true, false, false, false];
        assert_eq!(csr.cut_size(&in_set), g.cut_size(&in_set));
        assert_eq!(csr.cut_size(&in_set), 2);
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let csr = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_arcs(), 0);
        assert!(csr.is_connected());
        let csr1 = CsrGraph::from_graph(&Graph::new(3));
        assert_eq!(csr1.num_nodes(), 3);
        assert_eq!(csr1.degree(1), 0);
        assert_eq!(csr1.max_degree(), 0);
        assert!(!csr1.is_connected());
    }
}
