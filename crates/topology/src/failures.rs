//! Failure injection (paper §4.3).
//!
//! The paper fails a random fraction of all switch-to-switch links and
//! measures the resulting throughput degradation (Figure 8). The key
//! qualitative point is that a random graph with failures "is just another
//! random graph of slightly smaller size", so Jellyfish degrades gracefully.

use crate::graph::NodeId;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Description of an applied failure scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// Links removed, as switch-id pairs.
    pub failed_links: Vec<(NodeId, NodeId)>,
    /// Switches whose links were all removed (node failures).
    pub failed_switches: Vec<NodeId>,
}

impl FailureReport {
    /// Total number of failure events injected.
    pub fn total_failures(&self) -> usize {
        self.failed_links.len() + self.failed_switches.len()
    }
}

/// Removes a uniform-random `fraction` of all switch-to-switch links
/// (rounded to the nearest whole link count). Servers stay attached.
///
/// Returns the report of removed links. `fraction` is clamped to `[0, 1]`.
pub fn fail_random_links(topo: &mut Topology, fraction: f64, seed: u64) -> FailureReport {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut links: Vec<(NodeId, NodeId)> = topo.graph().edges().map(|e| (e.a, e.b)).collect();
    links.shuffle(&mut rng);
    let to_fail = ((links.len() as f64) * fraction).round() as usize;
    let failed: Vec<(NodeId, NodeId)> = links.into_iter().take(to_fail).collect();
    for &(u, v) in &failed {
        topo.disconnect(u, v);
    }
    debug_assert!(topo.check_invariants().is_ok());
    FailureReport { failed_links: failed, failed_switches: Vec::new() }
}

/// Fails an exact number of uniform-random links.
pub fn fail_link_count(topo: &mut Topology, count: usize, seed: u64) -> FailureReport {
    let total = topo.num_links();
    if total == 0 {
        return FailureReport { failed_links: Vec::new(), failed_switches: Vec::new() };
    }
    fail_random_links(topo, count.min(total) as f64 / total as f64, seed)
}

/// Fails a uniform-random `fraction` of switches: every network link incident
/// to a failed switch is removed and its servers are considered offline
/// (server count set to zero so capacity calculations exclude them).
pub fn fail_random_switches(topo: &mut Topology, fraction: f64, seed: u64) -> FailureReport {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut switches: Vec<NodeId> = topo.graph().nodes().collect();
    switches.shuffle(&mut rng);
    let to_fail = ((switches.len() as f64) * fraction).round() as usize;
    let failed: Vec<NodeId> = switches.into_iter().take(to_fail).collect();
    for &s in &failed {
        topo.graph_mut().isolate_node(s);
        topo.set_servers(s, 0).expect("zero servers always fits");
    }
    debug_assert!(topo.check_invariants().is_ok());
    FailureReport { failed_links: Vec::new(), failed_switches: failed }
}

/// Largest-connected-component statistics after failures: the fraction of
/// switches and of servers that remain in the largest component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivabilityStats {
    /// Fraction of switches in the largest connected component.
    pub switch_fraction: f64,
    /// Fraction of servers whose ToR switch is in the largest component.
    pub server_fraction: f64,
}

/// Computes survivability statistics for a (possibly failed) topology.
pub fn survivability(topo: &Topology) -> SurvivabilityStats {
    let comps = topo.graph().connected_components();
    let Some(largest) = comps.first() else {
        return SurvivabilityStats { switch_fraction: 0.0, server_fraction: 0.0 };
    };
    let total_switches = topo.num_switches();
    let total_servers = topo.total_servers();
    let servers_in: usize = largest.iter().map(|&n| topo.servers(n)).sum();
    SurvivabilityStats {
        switch_fraction: largest.len() as f64 / total_switches.max(1) as f64,
        server_fraction: if total_servers == 0 {
            0.0
        } else {
            servers_in as f64 / total_servers as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrg::JellyfishBuilder;

    fn topo() -> Topology {
        JellyfishBuilder::new(40, 12, 8).seed(9).build().unwrap()
    }

    #[test]
    fn fail_fraction_removes_expected_count() {
        let mut t = topo();
        let links_before = t.num_links();
        let report = fail_random_links(&mut t, 0.15, 1);
        let expected = ((links_before as f64) * 0.15).round() as usize;
        assert_eq!(report.failed_links.len(), expected);
        assert_eq!(t.num_links(), links_before - expected);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn fail_zero_and_full_fraction() {
        let mut t = topo();
        let before = t.num_links();
        let r0 = fail_random_links(&mut t, 0.0, 2);
        assert!(r0.failed_links.is_empty());
        assert_eq!(t.num_links(), before);
        let r1 = fail_random_links(&mut t, 1.0, 2);
        assert_eq!(r1.failed_links.len(), before);
        assert_eq!(t.num_links(), 0);
    }

    #[test]
    fn fraction_is_clamped() {
        let mut t = topo();
        let before = t.num_links();
        let r = fail_random_links(&mut t, 2.5, 3);
        assert_eq!(r.failed_links.len(), before);
        let mut t2 = topo();
        let r2 = fail_random_links(&mut t2, -0.5, 3);
        assert!(r2.failed_links.is_empty());
    }

    #[test]
    fn failure_is_deterministic_per_seed() {
        let mut a = topo();
        let mut b = topo();
        let ra = fail_random_links(&mut a, 0.2, 42);
        let rb = fail_random_links(&mut b, 0.2, 42);
        assert_eq!(ra.failed_links, rb.failed_links);
        let mut c = topo();
        let rc = fail_random_links(&mut c, 0.2, 43);
        assert_ne!(ra.failed_links, rc.failed_links);
    }

    #[test]
    fn fail_link_count_exact() {
        let mut t = topo();
        let before = t.num_links();
        let r = fail_link_count(&mut t, 10, 5);
        assert_eq!(r.failed_links.len(), 10);
        assert_eq!(t.num_links(), before - 10);
        // Requesting more than exist fails them all.
        let mut t2 = topo();
        let all = t2.num_links();
        let r2 = fail_link_count(&mut t2, all + 100, 5);
        assert_eq!(r2.failed_links.len(), all);
    }

    #[test]
    fn moderate_failures_keep_rrg_connected() {
        // An 8-regular random graph on 40 nodes survives 15% link failures
        // with overwhelming probability (the paper's resilience claim).
        for seed in 0..10 {
            let mut t = topo();
            fail_random_links(&mut t, 0.15, seed);
            let s = survivability(&t);
            assert!(s.switch_fraction > 0.95, "seed {seed}: only {} survived", s.switch_fraction);
        }
    }

    #[test]
    fn switch_failures_remove_links_and_servers() {
        let mut t = topo();
        let r = fail_random_switches(&mut t, 0.1, 7);
        assert_eq!(r.failed_switches.len(), 4);
        for &s in &r.failed_switches {
            assert_eq!(t.graph().degree(s), 0);
            assert_eq!(t.servers(s), 0);
        }
        let surv = survivability(&t);
        assert!(surv.server_fraction <= 1.0 && surv.server_fraction >= 0.8);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn survivability_of_fully_failed_network() {
        let mut t = topo();
        fail_random_links(&mut t, 1.0, 0);
        let s = survivability(&t);
        // Largest component is a single switch.
        assert!((s.switch_fraction - 1.0 / 40.0).abs() < 1e-12);
        assert!(s.server_fraction > 0.0);
    }

    #[test]
    fn total_failures_counts_both_kinds() {
        let r = FailureReport { failed_links: vec![(0, 1), (2, 3)], failed_switches: vec![7] };
        assert_eq!(r.total_failures(), 3);
    }
}
