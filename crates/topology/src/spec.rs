//! First-class topology specifications: every generator in this crate as a
//! parseable, round-trippable spec string, plus composable scenario
//! transforms.
//!
//! The paper's evaluation is comparative — Jellyfish against fat-trees,
//! small-world lattices, degree-diameter graphs, leaf-spine Clos — and the
//! experiment pipeline wants to point any metric at any topology without
//! code changes. A [`TopoSpec`] is that currency:
//!
//! ```text
//! spec      := generator [":" key "=" value ("," key "=" value)*] transform*
//! transform := "+" name "=" value
//! ```
//!
//! Examples (see TOPOLOGIES.md at the repository root for the full grammar):
//!
//! ```text
//! jellyfish:switches=245,ports=14,degree=11
//! jellyfish:switches=125,ports=10,servers_total=250
//! fattree:k=14
//! swdc:lattice=torus2d,n=256,servers=2
//! dd:config=3,servers=2
//! leafspine:leaf=16,spine=8,servers=8
//! jellyfish:switches=80,ports=12,degree=8+fail_links=0.08+expand=4
//! ```
//!
//! A spec resolves through the [`GeneratorRegistry`] of
//! [`TopologyGenerator`] trait objects, then applies its
//! [`ScenarioTransform`] chain (failure injection and incremental expansion,
//! wrapping [`crate::failures`] and [`crate::expansion`]). Construction is a
//! pure function of `(spec, seed)`:
//! [`TopoSpec::build`] with the same arguments always yields the same
//! topology, which is what lets sharded experiment sweeps record spec
//! strings and still merge byte-identically.
//!
//! Parse and display round-trip exactly: `parse(display(spec)) == spec` for
//! every representable spec (property-tested in `tests/spec_roundtrip.rs`).

use crate::clos::ClosConfig;
use crate::degree_diameter::{optimized_graph, AnnealParams, FIGURE3_CONFIGS};
use crate::expansion::add_racks;
use crate::failures::{fail_random_links, fail_random_switches};
use crate::fattree::FatTree;
use crate::rrg::{build_heterogeneous, JellyfishBuilder};
use crate::swdc::{Lattice, SwdcBuilder};
use crate::topology::{Topology, TopologyError};
use std::fmt;
use std::str::FromStr;

// ------------------------------------------------------------------ errors

/// Errors from parsing or resolving a [`TopoSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec string does not match the grammar.
    Syntax(String),
    /// The generator name is not registered.
    UnknownGenerator(String),
    /// A transform name or value is not recognized.
    UnknownTransform(String),
    /// A parameter is missing, duplicated, unknown, or has a bad value.
    Param(String),
    /// The underlying generator or transform failed to build the topology.
    Build(TopologyError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(m) => write!(f, "bad spec syntax: {m}"),
            SpecError::UnknownGenerator(name) => {
                let known: Vec<&str> = generators().iter().map(|g| g.name()).collect();
                write!(
                    f,
                    "unknown generator '{name}': registered generators are {}",
                    known.join(", ")
                )
            }
            SpecError::UnknownTransform(m) => {
                write!(
                    f,
                    "unknown transform {m}: registered transforms are {}",
                    transform_grammar()
                )
            }
            SpecError::Param(m) => write!(f, "bad parameter: {m}"),
            SpecError::Build(e) => write!(f, "cannot build topology: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TopologyError> for SpecError {
    fn from(e: TopologyError) -> Self {
        SpecError::Build(e)
    }
}

// ------------------------------------------------------------------ params

/// Ordered `key=value` parameters of a spec's generator segment.
///
/// Order is preserved from the parsed string (and from
/// [`TopoSpec::with_param`] calls), which is what makes display a faithful
/// inverse of parse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Params {
    pairs: Vec<(String, String)>,
}

impl Params {
    /// No parameters.
    pub fn new() -> Self {
        Params::default()
    }

    /// The raw `(key, value)` pairs in spec order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Appends a pair (keeps insertion order).
    pub fn push(&mut self, key: impl Into<String>, value: impl ToString) {
        self.pairs.push((key.into(), value.to_string()));
    }

    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Rejects duplicate keys and keys outside `allowed`.
    pub fn check_keys(&self, generator: &str, allowed: &[&str]) -> Result<(), SpecError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !allowed.contains(&k.as_str()) {
                return Err(SpecError::Param(format!(
                    "{generator} does not take '{k}': known keys are {}",
                    allowed.join(", ")
                )));
            }
            if self.pairs[..i].iter().any(|(prev, _)| prev == k) {
                return Err(SpecError::Param(format!("duplicate key '{k}'")));
            }
        }
        Ok(())
    }

    /// Parses `key` as `usize`, if present.
    pub fn usize_opt(&self, key: &str) -> Result<Option<usize>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| SpecError::Param(format!("'{key}={raw}' is not an unsigned integer"))),
        }
    }

    /// Parses the required `key` as `usize`.
    pub fn usize(&self, key: &str) -> Result<usize, SpecError> {
        self.usize_opt(key)?
            .ok_or_else(|| SpecError::Param(format!("missing required key '{key}'")))
    }
}

// -------------------------------------------------------------- impairment

/// Distribution of per-packet latency jitter in an [`ImpairConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JitterDist {
    /// Uniform on `[0, jitter_ms)` (the default).
    #[default]
    Uniform,
    /// Exponential with mean `jitter_ms` (heavy-ish tail).
    Exp,
}

impl JitterDist {
    /// The spec-string token (`uniform` / `exp`).
    pub fn token(self) -> &'static str {
        match self {
            JitterDist::Uniform => "uniform",
            JitterDist::Exp => "exp",
        }
    }
}

/// Per-link impairment parameters carried by the `+impair=` transform.
///
/// Unlike the other transforms this does not rewrite the topology: it rides
/// on the spec into the simulation layer, where `jellyfish-sim` attaches a
/// deterministic per-link impairment model to every link. The grammar is a
/// comma-separated list of `key:value` items (`:`/`/` inside a transform
/// value are fine — specs split on `+` first):
///
/// ```text
/// +impair=loss:0.01,jitter_ms:5,ge:0.9/0.1,queue:64
/// ```
///
/// | key         | value                  | semantics                                        |
/// |-------------|------------------------|--------------------------------------------------|
/// | `loss`      | fraction               | i.i.d. per-packet wire loss probability          |
/// | `ge`        | `p/r`, both fractions  | Gilbert–Elliott burst loss: P(good→bad)/P(bad→good) per packet; packets sent in the bad state are lost |
/// | `jitter_ms` | milliseconds ≥ 0       | extra per-packet propagation delay               |
/// | `jdist`     | `uniform` \| `exp`     | jitter distribution (default `uniform`)          |
/// | `reorder`   | fraction               | probability a delivered packet is held back behind its successor |
/// | `dup`       | fraction               | probability a delivered packet is duplicated     |
/// | `queue`     | packets                | overrides the link's drop-tail queue capacity    |
///
/// Every field defaults to "off"; `Display` prints only the non-default
/// fields in the canonical order above (an all-default config prints as
/// `loss:0` so the transform still round-trips).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImpairConfig {
    /// I.i.d. per-packet loss probability on the wire.
    pub loss: f64,
    /// Gilbert–Elliott P(good → bad) per packet.
    pub ge_good_to_bad: f64,
    /// Gilbert–Elliott P(bad → good) per packet.
    pub ge_bad_to_good: f64,
    /// Mean/bound of the extra per-packet latency, in milliseconds.
    pub jitter_ms: f64,
    /// Distribution of the jitter.
    pub jitter_dist: JitterDist,
    /// Probability a delivered packet is reordered behind its successor.
    pub reorder: f64,
    /// Probability a delivered packet is duplicated.
    pub duplicate: f64,
    /// Drop-tail queue capacity override (packets); `None` keeps the link's
    /// configured buffer.
    pub queue: Option<usize>,
}

fn mix64(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl ImpairConfig {
    /// True when every field is at its default (no impairment).
    pub fn is_ideal(&self) -> bool {
        *self == ImpairConfig::default()
    }

    /// A deterministic token folding every field, used by
    /// [`ScenarioTransform::derived_seed`] so distinct impairment configs
    /// draw distinct RNG streams under one build seed.
    pub fn seed_token(&self) -> u64 {
        let mut h: u64 = 0x1A11_7A17;
        for v in [
            self.loss.to_bits(),
            self.ge_good_to_bad.to_bits(),
            self.ge_bad_to_good.to_bits(),
            self.jitter_ms.to_bits(),
            self.jitter_dist as u64,
            self.reorder.to_bits(),
            self.duplicate.to_bits(),
            self.queue.map_or(0, |q| q as u64 + 1),
        ] {
            h = mix64(h, v);
        }
        h
    }

    /// Field-wise overlay: every non-default field of `later` replaces this
    /// config's value. This is how chained `+impair=` transforms compose
    /// (later transforms win per key, untouched keys persist).
    pub fn merged(mut self, later: &ImpairConfig) -> ImpairConfig {
        let d = ImpairConfig::default();
        if later.loss != d.loss {
            self.loss = later.loss;
        }
        if later.ge_good_to_bad != d.ge_good_to_bad || later.ge_bad_to_good != d.ge_bad_to_good {
            self.ge_good_to_bad = later.ge_good_to_bad;
            self.ge_bad_to_good = later.ge_bad_to_good;
        }
        if later.jitter_ms != d.jitter_ms {
            self.jitter_ms = later.jitter_ms;
        }
        if later.jitter_dist != d.jitter_dist {
            self.jitter_dist = later.jitter_dist;
        }
        if later.reorder != d.reorder {
            self.reorder = later.reorder;
        }
        if later.duplicate != d.duplicate {
            self.duplicate = later.duplicate;
        }
        if later.queue.is_some() {
            self.queue = later.queue;
        }
        self
    }

    /// Parses the `key:value,...` value of an `+impair=` transform.
    pub fn parse(raw: &str) -> Result<Self, SpecError> {
        const KEYS: &str = "loss, ge, jitter_ms, jdist, reorder, dup, queue";
        let fraction = |key: &str, raw: &str| -> Result<f64, SpecError> {
            let v: f64 = raw
                .parse()
                .map_err(|_| SpecError::Param(format!("impair '{key}:{raw}' is not a number")))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(SpecError::Param(format!("impair '{key}:{raw}' must be in [0, 1]")));
            }
            Ok(v)
        };
        let mut cfg = ImpairConfig::default();
        let mut seen: Vec<&str> = Vec::new();
        for item in raw.split(',') {
            let (key, value) = item.split_once(':').ok_or_else(|| {
                SpecError::Param(format!("impair '{item}' is not key:value (keys: {KEYS})"))
            })?;
            if seen.contains(&key) {
                return Err(SpecError::Param(format!("impair has duplicate key '{key}'")));
            }
            match key {
                "loss" => cfg.loss = fraction(key, value)?,
                "ge" => {
                    let (p, r) = value.split_once('/').ok_or_else(|| {
                        SpecError::Param(format!(
                            "impair 'ge:{value}' is not <good_to_bad>/<bad_to_good>"
                        ))
                    })?;
                    cfg.ge_good_to_bad = fraction("ge", p)?;
                    cfg.ge_bad_to_good = fraction("ge", r)?;
                }
                "jitter_ms" => {
                    let v: f64 = value.parse().map_err(|_| {
                        SpecError::Param(format!("impair 'jitter_ms:{value}' is not a number"))
                    })?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(SpecError::Param(format!(
                            "impair 'jitter_ms:{value}' must be finite and >= 0"
                        )));
                    }
                    cfg.jitter_ms = v;
                }
                "jdist" => {
                    cfg.jitter_dist = match value {
                        "uniform" => JitterDist::Uniform,
                        "exp" => JitterDist::Exp,
                        other => {
                            return Err(SpecError::Param(format!(
                                "impair 'jdist:{other}': valid distributions are uniform, exp"
                            )))
                        }
                    }
                }
                "reorder" => cfg.reorder = fraction(key, value)?,
                "dup" => cfg.duplicate = fraction(key, value)?,
                "queue" => {
                    let q: usize = value.parse().map_err(|_| {
                        SpecError::Param(format!(
                            "impair 'queue:{value}' is not an unsigned integer"
                        ))
                    })?;
                    if q == 0 {
                        return Err(SpecError::Param(
                            "impair 'queue:0' would drop every packet".into(),
                        ));
                    }
                    cfg.queue = Some(q);
                }
                other => {
                    return Err(SpecError::Param(format!(
                        "impair does not take '{other}': known keys are {KEYS}"
                    )))
                }
            }
            seen.push(key);
        }
        Ok(cfg)
    }
}

impl fmt::Display for ImpairConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut item = |f: &mut fmt::Formatter<'_>, s: fmt::Arguments<'_>| -> fmt::Result {
            f.write_str(sep)?;
            sep = ",";
            f.write_fmt(s)
        };
        if self.loss != 0.0 || self.is_ideal() {
            item(f, format_args!("loss:{}", self.loss))?;
        }
        if self.ge_good_to_bad != 0.0 || self.ge_bad_to_good != 0.0 {
            item(f, format_args!("ge:{}/{}", self.ge_good_to_bad, self.ge_bad_to_good))?;
        }
        if self.jitter_ms != 0.0 {
            item(f, format_args!("jitter_ms:{}", self.jitter_ms))?;
        }
        if self.jitter_dist != JitterDist::default() {
            item(f, format_args!("jdist:{}", self.jitter_dist.token()))?;
        }
        if self.reorder != 0.0 {
            item(f, format_args!("reorder:{}", self.reorder))?;
        }
        if self.duplicate != 0.0 {
            item(f, format_args!("dup:{}", self.duplicate))?;
        }
        if let Some(q) = self.queue {
            item(f, format_args!("queue:{q}"))?;
        }
        Ok(())
    }
}

// -------------------------------------------------------------- transforms

/// A degradation or growth scenario applied on top of a generated topology.
///
/// Transforms compose left to right (`spec+fail_links=0.1+expand=4` fails
/// links first, then expands) and wrap the existing procedures in
/// [`crate::failures`] and [`crate::expansion`]. Each transform derives its
/// RNG seed deterministically from the build seed and its own value, so a
/// transformed spec is as reproducible as a bare one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioTransform {
    /// Fail a uniform-random fraction of switch-to-switch links
    /// (`+fail_links=0.08`); wraps [`fail_random_links`].
    FailLinks(f64),
    /// Fail a uniform-random fraction of switches, removing their links and
    /// servers (`+fail_switches=0.02`); wraps [`fail_random_switches`].
    FailSwitches(f64),
    /// Incrementally add this many racks via the paper's §4.2 link-splice
    /// procedure (`+expand=40`). Each new rack copies the port budget and
    /// server count of switch 0; wraps [`add_racks`].
    Expand(usize),
    /// Uniform degradation: fail the same fraction of links *and* of
    /// switches (`+degrade_uniform=0.05`) — the "everything ages at the same
    /// rate" scenario.
    DegradeUniform(f64),
    /// Per-link impairment (`+impair=loss:0.01,jitter_ms:5`). Unlike the
    /// other transforms this leaves the topology untouched: the config rides
    /// on the spec into the simulation layer (see [`TopoSpec::impairment`]),
    /// which attaches deterministic per-link loss/jitter/reorder/duplicate
    /// models keyed by the build seed.
    Impair(ImpairConfig),
}

impl ScenarioTransform {
    /// The transform's spec-string name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioTransform::FailLinks(_) => "fail_links",
            ScenarioTransform::FailSwitches(_) => "fail_switches",
            ScenarioTransform::Expand(_) => "expand",
            ScenarioTransform::DegradeUniform(_) => "degrade_uniform",
            ScenarioTransform::Impair(_) => "impair",
        }
    }

    /// Parses one `name=value` transform segment.
    pub fn parse(segment: &str) -> Result<Self, SpecError> {
        let (name, raw) = segment.split_once('=').ok_or_else(|| {
            SpecError::UnknownTransform(format!("'{segment}' (expected name=value)"))
        })?;
        let fraction = |raw: &str| -> Result<f64, SpecError> {
            let v: f64 = raw
                .parse()
                .map_err(|_| SpecError::Param(format!("'{name}={raw}' is not a number")))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(SpecError::Param(format!("'{name}={raw}' must be in [0, 1]")));
            }
            Ok(v)
        };
        match name {
            "fail_links" => Ok(ScenarioTransform::FailLinks(fraction(raw)?)),
            "fail_switches" => Ok(ScenarioTransform::FailSwitches(fraction(raw)?)),
            "degrade_uniform" => Ok(ScenarioTransform::DegradeUniform(fraction(raw)?)),
            "expand" => {
                let racks: usize = raw.parse().map_err(|_| {
                    SpecError::Param(format!("'expand={raw}' is not an unsigned integer"))
                })?;
                Ok(ScenarioTransform::Expand(racks))
            }
            "impair" => Ok(ScenarioTransform::Impair(ImpairConfig::parse(raw)?)),
            other => Err(SpecError::UnknownTransform(format!("'{other}'"))),
        }
    }

    /// The RNG seed this transform uses when applied under build seed
    /// `base`. Fractional transforms use `base ^ (fraction * 100)` — the
    /// derivation the legacy Figure 8 sweep used, so specs reproduce its
    /// historical outputs bit-for-bit.
    pub fn derived_seed(&self, base: u64) -> u64 {
        match self {
            ScenarioTransform::FailLinks(f)
            | ScenarioTransform::FailSwitches(f)
            | ScenarioTransform::DegradeUniform(f) => base ^ ((f * 100.0) as u64),
            ScenarioTransform::Expand(racks) => base ^ 0xE ^ (*racks as u64),
            ScenarioTransform::Impair(cfg) => base ^ cfg.seed_token(),
        }
    }

    /// Applies the transform in place.
    pub fn apply(&self, topo: &mut Topology, base_seed: u64) -> Result<(), SpecError> {
        let seed = self.derived_seed(base_seed);
        match *self {
            ScenarioTransform::FailLinks(f) => {
                fail_random_links(topo, f, seed);
            }
            ScenarioTransform::FailSwitches(f) => {
                fail_random_switches(topo, f, seed);
            }
            ScenarioTransform::DegradeUniform(f) => {
                fail_random_links(topo, f, seed);
                fail_random_switches(topo, f, seed ^ 0x5D1C);
            }
            ScenarioTransform::Expand(racks) => {
                if topo.num_switches() == 0 {
                    return Err(SpecError::Param("cannot expand an empty topology".into()));
                }
                let ports = topo.ports(0);
                let servers = topo.servers(0);
                add_racks(topo, racks, ports, servers, seed)?;
            }
            // Impairment lives in the simulation layer, not the graph; the
            // config is read back out via [`TopoSpec::impairment`].
            ScenarioTransform::Impair(_) => {}
        }
        Ok(())
    }
}

impl fmt::Display for ScenarioTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioTransform::FailLinks(v)
            | ScenarioTransform::FailSwitches(v)
            | ScenarioTransform::DegradeUniform(v) => write!(f, "{}={v}", self.name()),
            ScenarioTransform::Expand(racks) => write!(f, "expand={racks}"),
            ScenarioTransform::Impair(cfg) => write!(f, "impair={cfg}"),
        }
    }
}

/// One-line grammar of the registered transforms, for error messages and
/// `figures topo list`.
pub fn transform_grammar() -> &'static str {
    "fail_links=<fraction>, fail_switches=<fraction>, degrade_uniform=<fraction>, \
     expand=<racks>, impair=<key:value,...> (keys: loss, ge, jitter_ms, jdist, reorder, \
     dup, queue)"
}

// -------------------------------------------------------------- generators

/// A named topology generator resolvable from a [`TopoSpec`].
///
/// Implementations validate their parameters and must be pure functions of
/// `(params, seed)`; the experiment layer's snapshot cache and the shard
/// merge machinery both rely on that determinism.
pub trait TopologyGenerator: Sync {
    /// Spec-string name (`jellyfish`, `fattree`, ...).
    fn name(&self) -> &'static str;

    /// One-line description shown by `figures topo list`.
    fn describe(&self) -> &'static str;

    /// An example spec string exercising this generator.
    fn example(&self) -> &'static str;

    /// Builds the topology for validated `params`.
    fn build(&self, params: &Params, seed: u64) -> Result<Topology, SpecError>;
}

/// `jellyfish` — the paper's random regular graph (§3).
///
/// Keys: `switches` (required), `ports` (required), then one of
/// * `degree` — network ports per switch; servers fill the rest;
/// * `servers` — servers per switch; the network uses the rest;
/// * both — explicit split, validated `degree + servers <= ports`;
/// * `servers_total` — total servers spread as evenly as possible, each
///   switch using its leftover ports for the network (the paper's
///   same-equipment comparisons; equals [`build_heterogeneous`]).
struct JellyfishGen;

impl TopologyGenerator for JellyfishGen {
    fn name(&self) -> &'static str {
        "jellyfish"
    }

    fn describe(&self) -> &'static str {
        "random regular graph of ToR switches (paper §3)"
    }

    fn example(&self) -> &'static str {
        "jellyfish:switches=245,ports=14,degree=11"
    }

    fn build(&self, params: &Params, seed: u64) -> Result<Topology, SpecError> {
        params.check_keys(
            self.name(),
            &["switches", "ports", "degree", "servers", "servers_total"],
        )?;
        let switches = params.usize("switches")?;
        let ports = params.usize("ports")?;
        let degree = params.usize_opt("degree")?;
        let servers = params.usize_opt("servers")?;
        let servers_total = params.usize_opt("servers_total")?;
        match (degree, servers, servers_total) {
            (None, None, Some(total)) => {
                if total > switches.saturating_mul(ports.saturating_sub(1)) {
                    return Err(SpecError::Param(format!(
                        "servers_total={total} cannot attach to {switches} switches of {ports} ports"
                    )));
                }
                // Even spread; every switch's remaining ports go to the
                // network (identical to the legacy jellyfish_with_servers).
                let base = total / switches;
                let extra = total % switches;
                let per: Vec<usize> =
                    (0..switches).map(|i| base + usize::from(i < extra)).collect();
                let degrees: Vec<usize> = per.iter().map(|&s| ports - s).collect();
                Ok(build_heterogeneous(&vec![ports; switches], &degrees, seed)?)
            }
            (Some(_), _, Some(_)) | (_, Some(_), Some(_)) => {
                Err(SpecError::Param("servers_total is exclusive with degree/servers".into()))
            }
            (None, None, None) => Err(SpecError::Param(
                "jellyfish needs one of degree, servers, or servers_total".into(),
            )),
            (deg, srv, None) => {
                let degree = match (deg, srv) {
                    (Some(d), _) => d,
                    (None, Some(s)) => ports.checked_sub(s).ok_or_else(|| {
                        SpecError::Param(format!("servers={s} exceeds ports={ports}"))
                    })?,
                    (None, None) => unreachable!(),
                };
                let mut topo = JellyfishBuilder::new(switches, ports, degree).seed(seed).build()?;
                if let (Some(d), Some(s)) = (deg, srv) {
                    if d + s > ports {
                        return Err(SpecError::Param(format!(
                            "degree={d} + servers={s} exceeds ports={ports}"
                        )));
                    }
                    for v in 0..topo.num_switches() {
                        topo.set_servers(v, s)?;
                    }
                }
                Ok(topo)
            }
        }
    }
}

/// `fattree` — the three-level k-ary fat-tree baseline. Key: `k` (required,
/// even). Deterministic; the seed is unused.
struct FatTreeGen;

impl TopologyGenerator for FatTreeGen {
    fn name(&self) -> &'static str {
        "fattree"
    }

    fn describe(&self) -> &'static str {
        "three-level k-ary fat-tree (Al-Fares et al.)"
    }

    fn example(&self) -> &'static str {
        "fattree:k=14"
    }

    fn build(&self, params: &Params, _seed: u64) -> Result<Topology, SpecError> {
        params.check_keys(self.name(), &["k"])?;
        Ok(FatTree::new(params.usize("k")?)?.into_topology())
    }
}

/// `swdc` — Small-World Data Center lattices with random shortcuts.
///
/// Keys: `lattice` (required: `ring`, `torus2d`, `hex3d`), `n` (required),
/// `degree` (default 6), `servers` (per switch, default 1), `ports`
/// (optional explicit budget).
struct SwdcGen;

/// Spec-string token of a [`Lattice`].
pub fn lattice_token(lattice: Lattice) -> &'static str {
    match lattice {
        Lattice::Ring => "ring",
        Lattice::Torus2D => "torus2d",
        Lattice::HexTorus3D => "hex3d",
    }
}

/// Parses a [`Lattice`] spec token.
pub fn parse_lattice(token: &str) -> Result<Lattice, SpecError> {
    match token {
        "ring" => Ok(Lattice::Ring),
        "torus2d" => Ok(Lattice::Torus2D),
        "hex3d" => Ok(Lattice::HexTorus3D),
        other => Err(SpecError::Param(format!(
            "unknown lattice '{other}': valid lattices are ring, torus2d, hex3d"
        ))),
    }
}

impl TopologyGenerator for SwdcGen {
    fn name(&self) -> &'static str {
        "swdc"
    }

    fn describe(&self) -> &'static str {
        "small-world data center lattice + random shortcuts (SoCC 2011)"
    }

    fn example(&self) -> &'static str {
        "swdc:lattice=torus2d,n=256,servers=2"
    }

    fn build(&self, params: &Params, seed: u64) -> Result<Topology, SpecError> {
        params.check_keys(self.name(), &["lattice", "n", "degree", "servers", "ports"])?;
        let lattice = parse_lattice(
            params
                .get("lattice")
                .ok_or_else(|| SpecError::Param("missing required key 'lattice'".into()))?,
        )?;
        let n = params.usize("n")?;
        let degree = params.usize_opt("degree")?.unwrap_or(6);
        let servers = params.usize_opt("servers")?.unwrap_or(1);
        let mut builder =
            SwdcBuilder::new(lattice, n, degree).servers_per_switch(servers).seed(seed);
        if let Some(ports) = params.usize_opt("ports")? {
            builder = builder.ports(ports);
        }
        Ok(builder.build()?)
    }
}

/// `dd` — best-known degree-diameter benchmark graphs (Figure 3).
///
/// Keys: either `config` (index into the paper's nine
/// [`FIGURE3_CONFIGS`]) or explicit `n`, `ports`, `degree`; optional
/// `servers` (per switch; default `ports - degree`).
struct DegreeDiameterGen;

impl TopologyGenerator for DegreeDiameterGen {
    fn name(&self) -> &'static str {
        "dd"
    }

    fn describe(&self) -> &'static str {
        "best-known degree-diameter benchmark graph (paper §4.1)"
    }

    fn example(&self) -> &'static str {
        "dd:config=3,servers=2"
    }

    fn build(&self, params: &Params, seed: u64) -> Result<Topology, SpecError> {
        params.check_keys(self.name(), &["config", "n", "ports", "degree", "servers"])?;
        let (n, ports, degree) = match params.usize_opt("config")? {
            Some(i) => {
                if params.get("n").is_some()
                    || params.get("ports").is_some()
                    || params.get("degree").is_some()
                {
                    return Err(SpecError::Param(
                        "'config' is exclusive with explicit n/ports/degree".into(),
                    ));
                }
                *FIGURE3_CONFIGS.get(i).ok_or_else(|| {
                    SpecError::Param(format!(
                        "config={i} out of range: the paper has {} configurations (0..={})",
                        FIGURE3_CONFIGS.len(),
                        FIGURE3_CONFIGS.len() - 1
                    ))
                })?
            }
            None => (params.usize("n")?, params.usize("ports")?, params.usize("degree")?),
        };
        let mut topo = optimized_graph(n, ports, degree, AnnealParams::default(), seed)?;
        if let Some(servers) = params.usize_opt("servers")? {
            if degree + servers > ports {
                return Err(SpecError::Param(format!(
                    "degree={degree} + servers={servers} exceeds ports={ports}"
                )));
            }
            for v in 0..topo.num_switches() {
                topo.set_servers(v, servers)?;
            }
        }
        Ok(topo)
    }
}

/// `leafspine` — two-level folded-Clos. Keys: `leaf`, `spine`, `servers`
/// (per leaf; all required), `leaf_ports` (default `spine + servers`),
/// `spine_ports` (default `leaf`). Deterministic; the seed is unused.
struct LeafSpineGen;

impl TopologyGenerator for LeafSpineGen {
    fn name(&self) -> &'static str {
        "leafspine"
    }

    fn describe(&self) -> &'static str {
        "two-level folded-Clos (leaf-spine)"
    }

    fn example(&self) -> &'static str {
        "leafspine:leaf=16,spine=8,servers=8"
    }

    fn build(&self, params: &Params, _seed: u64) -> Result<Topology, SpecError> {
        params
            .check_keys(self.name(), &["leaf", "spine", "servers", "leaf_ports", "spine_ports"])?;
        let leaves = params.usize("leaf")?;
        let spines = params.usize("spine")?;
        let servers_per_leaf = params.usize("servers")?;
        let leaf_ports = params.usize_opt("leaf_ports")?.unwrap_or(spines + servers_per_leaf);
        let spine_ports = params.usize_opt("spine_ports")?.unwrap_or(leaves);
        Ok(ClosConfig { leaves, spines, leaf_ports, spine_ports, servers_per_leaf }.build()?)
    }
}

/// The registry of topology generators, in presentation order.
///
/// This is the [`GeneratorRegistry`]: the only place a generator needs to be
/// added for `figures topo build`, `figures run --topo`, and every
/// spec-driven experiment to pick it up.
pub fn generators() -> &'static [&'static dyn TopologyGenerator] {
    static REGISTRY: &[&dyn TopologyGenerator] =
        &[&JellyfishGen, &FatTreeGen, &SwdcGen, &DegreeDiameterGen, &LeafSpineGen];
    REGISTRY
}

/// Alias documenting the registry's role; see [`generators`].
pub type GeneratorRegistry = &'static [&'static dyn TopologyGenerator];

/// Looks up a registered generator by spec name.
pub fn find_generator(name: &str) -> Option<&'static dyn TopologyGenerator> {
    generators().iter().find(|g| g.name() == name).copied()
}

// ------------------------------------------------------------------- spec

/// A parsed topology specification: a registered generator, its parameters,
/// and a chain of scenario transforms.
///
/// `Display` produces the canonical spec string and `FromStr` parses it
/// back; the two are exact inverses.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoSpec {
    generator: String,
    params: Params,
    transforms: Vec<ScenarioTransform>,
}

impl TopoSpec {
    /// Starts a spec for `generator` with no parameters.
    pub fn new(generator: impl Into<String>) -> Self {
        TopoSpec { generator: generator.into(), params: Params::new(), transforms: Vec::new() }
    }

    /// Appends a `key=value` parameter (builder style).
    pub fn with_param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push(key, value);
        self
    }

    /// Appends a scenario transform (builder style).
    pub fn with_transform(mut self, t: ScenarioTransform) -> Self {
        self.transforms.push(t);
        self
    }

    /// The generator name.
    pub fn generator(&self) -> &str {
        &self.generator
    }

    /// The generator parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The transform chain, in application order.
    pub fn transforms(&self) -> &[ScenarioTransform] {
        &self.transforms
    }

    /// The spec without its transforms (the cacheable base topology).
    pub fn base(&self) -> TopoSpec {
        TopoSpec {
            generator: self.generator.clone(),
            params: self.params.clone(),
            transforms: Vec::new(),
        }
    }

    /// The effective impairment of this spec's transform chain, if any:
    /// `+impair=` segments fold left to right with field-wise overlay
    /// ([`ImpairConfig::merged`]), so later segments override only the keys
    /// they set.
    pub fn impairment(&self) -> Option<ImpairConfig> {
        let mut acc: Option<ImpairConfig> = None;
        for t in &self.transforms {
            if let ScenarioTransform::Impair(cfg) = t {
                acc = Some(match acc {
                    None => *cfg,
                    Some(prev) => prev.merged(cfg),
                });
            }
        }
        acc
    }

    /// This spec with every `+impair=` transform removed (topology-affecting
    /// transforms are kept in order). Experiments use this to re-spec an
    /// item with their own impairment axis.
    pub fn without_impairment(&self) -> TopoSpec {
        TopoSpec {
            generator: self.generator.clone(),
            params: self.params.clone(),
            transforms: self
                .transforms
                .iter()
                .filter(|t| !matches!(t, ScenarioTransform::Impair(_)))
                .copied()
                .collect(),
        }
    }

    /// Resolves the generator from the registry.
    pub fn resolve(&self) -> Result<&'static dyn TopologyGenerator, SpecError> {
        find_generator(&self.generator)
            .ok_or_else(|| SpecError::UnknownGenerator(self.generator.clone()))
    }

    /// Builds the base topology (no transforms). Pure in `(self, seed)`.
    pub fn build_base(&self, seed: u64) -> Result<Topology, SpecError> {
        self.resolve()?.build(&self.params, seed)
    }

    /// Applies this spec's transform chain to `topo` under build seed `seed`.
    pub fn apply_transforms(&self, topo: &mut Topology, seed: u64) -> Result<(), SpecError> {
        for t in &self.transforms {
            t.apply(topo, seed)?;
        }
        Ok(())
    }

    /// Builds the fully transformed topology. Pure in `(self, seed)`.
    pub fn build(&self, seed: u64) -> Result<Topology, SpecError> {
        let mut topo = self.build_base(seed)?;
        self.apply_transforms(&mut topo, seed)?;
        Ok(topo)
    }
}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.generator)?;
        for (i, (k, v)) in self.params.pairs().iter().enumerate() {
            f.write_str(if i == 0 { ":" } else { "," })?;
            write!(f, "{k}={v}")?;
        }
        for t in &self.transforms {
            write!(f, "+{t}")?;
        }
        Ok(())
    }
}

impl FromStr for TopoSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Syntax("empty spec".into()));
        }
        let mut segments = s.split('+');
        let head = segments.next().expect("split yields at least one segment");
        let (generator, raw_params) = match head.split_once(':') {
            Some((g, p)) => (g, Some(p)),
            None => (head, None),
        };
        if generator.is_empty() {
            return Err(SpecError::Syntax(format!("'{s}' has no generator name")));
        }
        if find_generator(generator).is_none() {
            return Err(SpecError::UnknownGenerator(generator.to_string()));
        }
        let mut params = Params::new();
        if let Some(raw) = raw_params {
            if raw.is_empty() {
                return Err(SpecError::Syntax(format!("'{head}' has ':' but no parameters")));
            }
            for pair in raw.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| SpecError::Syntax(format!("'{pair}' is not key=value")))?;
                if k.is_empty() || v.is_empty() {
                    return Err(SpecError::Syntax(format!("'{pair}' has an empty key or value")));
                }
                params.push(k, v);
            }
        }
        let transforms = segments.map(ScenarioTransform::parse).collect::<Result<Vec<_>, _>>()?;
        Ok(TopoSpec { generator: generator.to_string(), params, transforms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips_examples() {
        for g in generators() {
            let spec: TopoSpec = g
                .example()
                .parse()
                .unwrap_or_else(|e| panic!("example for {} does not parse: {e}", g.name()));
            assert_eq!(spec.to_string(), g.example(), "{} example not canonical", g.name());
        }
        let chained = "jellyfish:switches=80,ports=12,degree=8+fail_links=0.08+expand=4";
        let spec: TopoSpec = chained.parse().unwrap();
        assert_eq!(spec.transforms().len(), 2);
        assert_eq!(spec.to_string(), chained);
        assert_eq!(spec.base().to_string(), "jellyfish:switches=80,ports=12,degree=8");
    }

    #[test]
    fn examples_build() {
        for g in generators() {
            let spec: TopoSpec = g.example().parse().unwrap();
            let topo = spec
                .build(7)
                .unwrap_or_else(|e| panic!("example for {} does not build: {e}", g.name()));
            assert!(topo.num_switches() > 0);
            assert!(topo.check_invariants().is_ok());
        }
    }

    #[test]
    fn bad_specs_fail_with_useful_errors() {
        for (spec, needle) in [
            ("", "empty"),
            ("nope:k=4", "unknown generator"),
            ("jellyfish:", "no parameters"),
            ("jellyfish:switches", "not key=value"),
            ("jellyfish:switches=,ports=4", "empty key or value"),
            ("fattree:k=14+melt=0.5", "unknown transform"),
            ("fattree:k=14+fail_links=1.5", "must be in [0, 1]"),
            ("fattree:k=14+fail_links", "name=value"),
        ] {
            let err = spec.parse::<TopoSpec>().unwrap_err().to_string();
            assert!(err.contains(needle), "'{spec}': expected '{needle}' in '{err}'");
        }
        // Parses, but fails at build with a parameter error.
        for (spec, needle) in [
            ("fattree:k=14,extra=1", "does not take"),
            ("fattree:k=14,k=16", "duplicate"),
            ("jellyfish:switches=10,ports=4", "one of degree, servers, or servers_total"),
            ("jellyfish:switches=10,ports=4,degree=2,servers_total=9", "exclusive"),
            ("dd:config=99", "out of range"),
            ("swdc:lattice=moebius,n=100", "unknown lattice"),
        ] {
            let parsed: TopoSpec = spec.parse().unwrap_or_else(|e| panic!("'{spec}': {e}"));
            let err = parsed.build(1).unwrap_err().to_string();
            assert!(err.contains(needle), "'{spec}': expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn build_matches_legacy_constructors() {
        // jellyfish with explicit degree == JellyfishBuilder.
        let spec: TopoSpec = "jellyfish:switches=40,ports=12,degree=8".parse().unwrap();
        let a = spec.build(99).unwrap();
        let b = JellyfishBuilder::new(40, 12, 8).seed(99).build().unwrap();
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.total_servers(), b.total_servers());

        // servers key is the complement of degree.
        let spec2: TopoSpec = "jellyfish:switches=40,ports=12,servers=4".parse().unwrap();
        let c = spec2.build(99).unwrap();
        assert_eq!(c.graph().edges().collect::<Vec<_>>(), ea);
    }

    #[test]
    fn transforms_apply_in_order_and_derive_seeds() {
        let spec: TopoSpec =
            "jellyfish:switches=40,ports=12,degree=8+fail_links=0.1".parse().unwrap();
        let failed = spec.build(5).unwrap();
        // Same as building the base and failing with the derived seed.
        let mut manual = spec.base().build(5).unwrap();
        fail_random_links(&mut manual, 0.1, 5 ^ 10);
        assert_eq!(
            failed.graph().edges().collect::<Vec<_>>(),
            manual.graph().edges().collect::<Vec<_>>()
        );

        let grown: TopoSpec = "jellyfish:switches=20,ports=8,degree=5+expand=3".parse().unwrap();
        let t = grown.build(3).unwrap();
        assert_eq!(t.num_switches(), 23);
        assert!(t.check_invariants().is_ok());

        let degraded: TopoSpec =
            "jellyfish:switches=40,ports=12,degree=8+degrade_uniform=0.1".parse().unwrap();
        let d = degraded.build(5).unwrap();
        assert!(d.num_links() < failed.num_links() + 20);
        assert!(d.graph().nodes().any(|v| d.graph().degree(v) == 0 || d.servers(v) == 0));
    }

    #[test]
    fn impair_parses_and_round_trips() {
        let s = "jellyfish:switches=20,ports=8,degree=5+impair=loss:0.01,ge:0.9/0.1,jitter_ms:5,jdist:exp,reorder:0.02,dup:0.001,queue:64";
        let spec: TopoSpec = s.parse().unwrap();
        assert_eq!(spec.to_string(), s);
        let cfg = spec.impairment().unwrap();
        assert_eq!(cfg.loss, 0.01);
        assert_eq!(cfg.ge_good_to_bad, 0.9);
        assert_eq!(cfg.ge_bad_to_good, 0.1);
        assert_eq!(cfg.jitter_ms, 5.0);
        assert_eq!(cfg.jitter_dist, JitterDist::Exp);
        assert_eq!(cfg.reorder, 0.02);
        assert_eq!(cfg.duplicate, 0.001);
        assert_eq!(cfg.queue, Some(64));
        // Impairment never alters the graph.
        let ideal = spec.without_impairment();
        assert_eq!(ideal.to_string(), "jellyfish:switches=20,ports=8,degree=5");
        assert_eq!(
            spec.build(7).unwrap().graph().edges().collect::<Vec<_>>(),
            ideal.build(7).unwrap().graph().edges().collect::<Vec<_>>()
        );
        // Non-canonical key order parses and re-renders canonically.
        let shuffled: TopoSpec = "fattree:k=4+impair=queue:32,loss:0.5".parse().unwrap();
        assert_eq!(shuffled.to_string(), "fattree:k=4+impair=loss:0.5,queue:32");
        // All-default config still round-trips.
        let ideal_cfg = ImpairConfig::default();
        let t = ScenarioTransform::Impair(ideal_cfg);
        assert_eq!(t.to_string(), "impair=loss:0");
        assert_eq!(ScenarioTransform::parse("impair=loss:0").unwrap(), t);
    }

    #[test]
    fn impair_chains_merge_field_wise() {
        let spec: TopoSpec =
            "fattree:k=4+impair=loss:0.01,jitter_ms:5+impair=loss:0.2+fail_links=0.1"
                .parse()
                .unwrap();
        let cfg = spec.impairment().unwrap();
        assert_eq!(cfg.loss, 0.2, "later impair overrides loss");
        assert_eq!(cfg.jitter_ms, 5.0, "unset keys persist");
        // Stripping impairment keeps the topology-affecting transforms.
        assert_eq!(spec.without_impairment().to_string(), "fattree:k=4+fail_links=0.1");
        assert_eq!(spec.base().to_string(), "fattree:k=4");
        // Distinct configs derive distinct seeds; equal configs agree.
        let a = ScenarioTransform::Impair(cfg).derived_seed(7);
        let b = ScenarioTransform::Impair(ImpairConfig { loss: 0.3, ..cfg }).derived_seed(7);
        assert_ne!(a, b);
        assert_eq!(a, ScenarioTransform::Impair(cfg).derived_seed(7));
    }

    #[test]
    fn impair_rejects_bad_values() {
        for (raw, needle) in [
            ("fattree:k=4+impair=loss:2", "must be in [0, 1]"),
            ("fattree:k=4+impair=loss", "not key:value"),
            ("fattree:k=4+impair=warp:0.1", "does not take 'warp'"),
            ("fattree:k=4+impair=loss:0.1,loss:0.2", "duplicate key"),
            ("fattree:k=4+impair=ge:0.5", "<good_to_bad>/<bad_to_good>"),
            ("fattree:k=4+impair=jitter_ms:-3", "must be finite and >= 0"),
            ("fattree:k=4+impair=jdist:normal", "valid distributions"),
            ("fattree:k=4+impair=queue:0", "drop every packet"),
            ("fattree:k=4+impair=queue:x", "unsigned integer"),
        ] {
            let err = raw.parse::<TopoSpec>().unwrap_err().to_string();
            assert!(err.contains(needle), "'{raw}': expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn build_is_deterministic() {
        for g in generators() {
            let spec: TopoSpec = g.example().parse().unwrap();
            let a = spec.build(2012).unwrap();
            let b = spec.build(2012).unwrap();
            assert_eq!(
                a.graph().edges().collect::<Vec<_>>(),
                b.graph().edges().collect::<Vec<_>>(),
                "{}: two builds with one seed differ",
                g.name()
            );
        }
    }
}
