//! Flat-slice kernels shared by the hot loops of the workspace: bitset word
//! operations for the BFS frontier machinery and the branch-free cut-size
//! scan behind the Kernighan–Lin bisection heuristic.
//!
//! Every kernel ships in two variants that produce **bit-identical**
//! results:
//!
//! * a `*_scalar` fallback — the plain one-element-at-a-time loop, always
//!   compiled, used as the equivalence-test reference and the benchmark
//!   baseline;
//! * a `*_chunked` variant — the same operations restructured into
//!   [`LANES`]-wide chunks with independent accumulators so the compiler can
//!   autovectorize them (the operations are integer/bit ops, so reassociation
//!   does not change results).
//!
//! The undecorated entry points (`count_ones`, `or_assign`, `cut_size`)
//! dispatch to the chunked variant when the crate is built with the `simd`
//! feature and to the scalar fallback otherwise; see PERF.md at the
//! repository root for the feature-flag matrix and measured speedups.

/// Chunk width used by the `*_chunked` kernels. Eight 64-bit lanes span two
/// AVX2 registers (or one AVX-512 register); on narrower targets the
/// compiler simply unrolls, which still hides the loop-carried dependency.
pub const LANES: usize = 8;

/// Whether this build dispatches to the chunked kernels by default.
#[inline]
pub const fn simd_enabled() -> bool {
    cfg!(feature = "simd")
}

/// Total number of set bits across `words` — scalar reference.
pub fn count_ones_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Total number of set bits across `words` — chunked with [`LANES`]
/// independent accumulators.
pub fn count_ones_chunked(words: &[u64]) -> usize {
    let mut lanes = [0usize; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &w) in lanes.iter_mut().zip(chunk) {
            *lane += w.count_ones() as usize;
        }
    }
    let mut total: usize = lanes.iter().sum();
    for &w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

/// Total number of set bits across `words` (feature-dispatched).
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    if simd_enabled() {
        count_ones_chunked(words)
    } else {
        count_ones_scalar(words)
    }
}

/// `dst[i] |= src[i]` for every word — scalar reference.
pub fn or_assign_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst[i] |= src[i]` for every word — chunked.
pub fn or_assign_chunked(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    let mut d_chunks = dst.chunks_exact_mut(LANES);
    let mut s_chunks = src.chunks_exact(LANES);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        for (dw, &sw) in d.iter_mut().zip(s) {
            *dw |= sw;
        }
    }
    for (d, &s) in d_chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
        *d |= s;
    }
}

/// `dst[i] |= src[i]` for every word (feature-dispatched).
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    if simd_enabled() {
        or_assign_chunked(dst, src);
    } else {
        or_assign_scalar(dst, src);
    }
}

/// OR of `masks[i]` over the indices in `idx` — scalar reference. This is
/// the per-node gather at the heart of the multi-source bit-parallel BFS:
/// `idx` is a CSR neighbor row and `masks` holds one source-bitmask per node.
pub fn or_gather_scalar(masks: &[u64], idx: &[u32]) -> u64 {
    let mut acc = 0u64;
    for &i in idx {
        acc |= masks[i as usize];
    }
    acc
}

/// OR-gather with [`LANES`] independent accumulators (OR is associative and
/// commutative on integers, so reassociation is exact).
pub fn or_gather_chunked(masks: &[u64], idx: &[u32]) -> u64 {
    let mut lanes = [0u64; LANES];
    let mut chunks = idx.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &i) in lanes.iter_mut().zip(chunk) {
            *lane |= masks[i as usize];
        }
    }
    let mut acc = lanes.iter().fold(0u64, |a, &l| a | l);
    for &i in chunks.remainder() {
        acc |= masks[i as usize];
    }
    acc
}

/// OR of `masks[i]` over the indices in `idx` (feature-dispatched).
#[inline]
pub fn or_gather(masks: &[u64], idx: &[u32]) -> u64 {
    if simd_enabled() {
        or_gather_chunked(masks, idx)
    } else {
        or_gather_scalar(masks, idx)
    }
}

/// Number of edges `(a, b)` with `in_set[a] != in_set[b]` — scalar reference
/// (the pre-rewrite `CsrGraph::cut_size` scan).
pub fn cut_size_scalar(edges: &[(u32, u32)], in_set: &[bool]) -> usize {
    edges.iter().filter(|&&(a, b)| in_set[a as usize] != in_set[b as usize]).count()
}

/// Number of edges crossing the cut — branch-free chunked scan: each edge
/// contributes `(in_set[a] ^ in_set[b]) as usize` to one of [`LANES`]
/// accumulators, so there is no data-dependent branch for the predictor to
/// miss on random partitions.
pub fn cut_size_chunked(edges: &[(u32, u32)], in_set: &[bool]) -> usize {
    let mut lanes = [0usize; LANES];
    let mut chunks = edges.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &(a, b)) in lanes.iter_mut().zip(chunk) {
            *lane += (in_set[a as usize] != in_set[b as usize]) as usize;
        }
    }
    let mut total: usize = lanes.iter().sum();
    for &(a, b) in chunks.remainder() {
        total += (in_set[a as usize] != in_set[b as usize]) as usize;
    }
    total
}

/// Number of edges crossing the cut (feature-dispatched).
#[inline]
pub fn cut_size(edges: &[(u32, u32)], in_set: &[bool]) -> usize {
    if simd_enabled() {
        cut_size_chunked(edges, in_set)
    } else {
        cut_size_scalar(edges, in_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, len: usize) -> Vec<u64> {
        // Simple xorshift stream; no external RNG needed for bit patterns.
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn count_ones_variants_agree() {
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let w = words(42 + len as u64, len);
            let expected = count_ones_scalar(&w);
            assert_eq!(count_ones_chunked(&w), expected, "len {len}");
            assert_eq!(count_ones(&w), expected, "len {len}");
        }
    }

    #[test]
    fn or_assign_variants_agree() {
        for len in [0usize, 1, 7, 8, 17, 100] {
            let src = words(7 + len as u64, len);
            let base = words(99 + len as u64, len);
            let mut scalar = base.clone();
            or_assign_scalar(&mut scalar, &src);
            let mut chunked = base.clone();
            or_assign_chunked(&mut chunked, &src);
            assert_eq!(scalar, chunked, "len {len}");
            let mut dispatched = base.clone();
            or_assign(&mut dispatched, &src);
            assert_eq!(scalar, dispatched, "len {len}");
        }
    }

    #[test]
    fn or_gather_variants_agree() {
        for len in [0usize, 1, 7, 8, 9, 40] {
            let masks = words(3 + len as u64, 64);
            let idx: Vec<u32> =
                words(11 + len as u64, len).iter().map(|w| (w % 64) as u32).collect();
            let expected = or_gather_scalar(&masks, &idx);
            assert_eq!(or_gather_chunked(&masks, &idx), expected, "len {len}");
            assert_eq!(or_gather(&masks, &idx), expected, "len {len}");
        }
    }

    #[test]
    fn cut_size_variants_agree() {
        let n = 50u32;
        let edges: Vec<(u32, u32)> =
            (0..n).flat_map(|a| (a + 1..n).step_by(3).map(move |b| (a, b))).collect();
        for seed in 0..4u64 {
            let bits = words(seed + 1, 1);
            let in_set: Vec<bool> =
                (0..n as usize).map(|i| (bits[0] >> (i % 64)) & 1 == 1).collect();
            let expected = cut_size_scalar(&edges, &in_set);
            assert_eq!(cut_size_chunked(&edges, &in_set), expected, "seed {seed}");
            assert_eq!(cut_size(&edges, &in_set), expected, "seed {seed}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(count_ones(&[]), 0);
        assert_eq!(cut_size(&[], &[]), 0);
        let mut empty: [u64; 0] = [];
        or_assign(&mut empty, &[]);
    }
}
