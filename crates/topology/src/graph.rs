//! A small undirected graph tailored to switch-level data center topologies.
//!
//! The graph is simple (no self-loops, no parallel edges), stores adjacency
//! as sorted vectors for cache-friendly traversal, and keeps an explicit edge
//! list so that "pick a uniform-random existing link" — the primitive the
//! Jellyfish construction and expansion procedures rely on — is O(1).

use std::collections::BTreeSet;
use std::fmt;

/// Index of a node (switch) in a [`Graph`].
pub type NodeId = usize;

/// An undirected edge between two nodes, stored with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a normalized edge (endpoints sorted). Panics on self-loops.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Returns the endpoint that is not `n`, or `None` if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// An undirected simple graph with O(1) uniform edge sampling support.
///
/// Nodes are identified by dense indices `0..num_nodes()`. All links are
/// treated as having unit capacity by the rest of the workspace; capacity
/// scaling happens at the consumer level.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    /// Edge list; position of each edge is tracked in `edge_index` so removal
    /// is O(degree) (swap-remove in the list, fix the moved edge's index).
    edges: Vec<Edge>,
    edge_index: std::collections::HashMap<Edge, usize>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_index: std::collections::HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.edge_index.contains_key(&Edge::new(u, v))
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Returns `false` (and leaves the graph unchanged) if the edge already
    /// exists or if `u == v`; returns `true` if the edge was inserted.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        let e = Edge::new(u, v);
        if self.edge_index.contains_key(&e) {
            return false;
        }
        self.edge_index.insert(e, self.edges.len());
        self.edges.push(e);
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        true
    }

    /// Removes the undirected edge `(u, v)`.
    ///
    /// Returns `true` if the edge existed and was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let e = Edge::new(u, v);
        let Some(pos) = self.edge_index.remove(&e) else {
            return false;
        };
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            let moved = self.edges[pos];
            self.edge_index.insert(moved, pos);
        }
        Self::remove_from_adjacency(&mut self.adjacency[u], v);
        Self::remove_from_adjacency(&mut self.adjacency[v], u);
        true
    }

    fn remove_from_adjacency(adj: &mut Vec<NodeId>, target: NodeId) {
        if let Some(i) = adj.iter().position(|&x| x == target) {
            adj.swap_remove(i);
        }
    }

    /// Neighbors of `n`.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n].len()
    }

    /// Iterator over all edges (each undirected edge appears once).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Returns the `i`-th edge in the internal edge list (arbitrary but stable
    /// order between mutations). Useful together with [`Graph::num_edges`]
    /// for uniform edge sampling.
    pub fn edge_at(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// Returns node ids `0..num_nodes()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Returns `true` if every node can reach every other node.
    ///
    /// An empty graph and a single-node graph are considered connected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Returns the connected components as sorted node lists, largest first.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(u);
                for &v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        components
    }

    /// Counts edges crossing the cut `(set, complement)`.
    ///
    /// `in_set[v]` must be `true` exactly for nodes in the set.
    pub fn cut_size(&self, in_set: &[bool]) -> usize {
        assert_eq!(in_set.len(), self.num_nodes());
        self.edges.iter().filter(|e| in_set[e.a] != in_set[e.b]).count()
    }

    /// Removes all edges incident to `n` (the node itself stays, isolated).
    pub fn isolate_node(&mut self, n: NodeId) {
        let neighbors: Vec<NodeId> = self.adjacency[n].clone();
        for v in neighbors {
            self.remove_edge(n, v);
        }
    }

    /// Number of edges with both endpoints inside `set`.
    pub fn edges_within(&self, set: &BTreeSet<NodeId>) -> usize {
        self.edges.iter().filter(|e| set.contains(&e.a) && set.contains(&e.b)).count()
    }

    /// Checks internal consistency (adjacency mirrors the edge list). Used by
    /// tests and debug assertions in the generators.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut degree_from_edges = vec![0usize; self.num_nodes()];
        for e in &self.edges {
            if e.a >= self.num_nodes() || e.b >= self.num_nodes() {
                return Err(format!("edge {e} references missing node"));
            }
            degree_from_edges[e.a] += 1;
            degree_from_edges[e.b] += 1;
            if !self.adjacency[e.a].contains(&e.b) || !self.adjacency[e.b].contains(&e.a) {
                return Err(format!("edge {e} missing from adjacency"));
            }
        }
        for (n, adj) in self.adjacency.iter().enumerate() {
            if adj.len() != degree_from_edges[n] {
                return Err(format!(
                    "node {n}: adjacency degree {} != edge-list degree {}",
                    adj.len(),
                    degree_from_edges[n]
                ));
            }
            let unique: BTreeSet<_> = adj.iter().collect();
            if unique.len() != adj.len() {
                return Err(format!("node {n} has duplicate adjacency entries"));
            }
            if adj.contains(&n) {
                return Err(format!("node {n} has a self-loop"));
            }
        }
        if self.edge_index.len() != self.edges.len() {
            return Err("edge index size mismatch".to_string());
        }
        for (i, e) in self.edges.iter().enumerate() {
            if self.edge_index.get(e) != Some(&i) {
                return Err(format!("edge index for {e} is stale"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.degree(1), 0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn duplicate_and_self_loop_edges_rejected() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "parallel edge must be rejected");
        assert!(!g.add_edge(1, 1), "self loop must be rejected");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_of_range_edges_rejected() {
        let mut g = Graph::new(2);
        assert!(!g.add_edge(0, 5));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.remove_edge(2, 1));
        assert!(!g.has_edge(1, 2));
        assert!(!g.remove_edge(1, 2), "second removal returns false");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 1);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn edge_swap_remove_keeps_index_consistent() {
        let mut g = Graph::new(6);
        for i in 0..5 {
            g.add_edge(i, i + 1);
        }
        // Remove an edge in the middle of the edge list, forcing a swap-remove.
        assert!(g.remove_edge(1, 2));
        assert!(g.check_invariants().is_ok());
        // The remaining edges are still findable and removable.
        assert!(g.remove_edge(4, 5));
        assert!(g.remove_edge(0, 1));
        assert!(g.check_invariants().is_ok());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(2);
        let n = g.add_node();
        assert_eq!(n, 2);
        assert!(g.add_edge(0, n));
        assert_eq!(g.degree(n), 1);
    }

    #[test]
    fn connectivity_of_path_and_split_graph() {
        let g = path_graph(10);
        assert!(g.is_connected());
        let mut g2 = path_graph(10);
        g2.remove_edge(4, 5);
        assert!(!g2.is_connected());
        let comps = g2.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert_eq!(comps[1].len(), 5);
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        // Cut {0,1} vs {2,3}: edges (1,2) and (3,0) cross.
        assert_eq!(g.cut_size(&[true, true, false, false]), 2);
        // Cut {0,2} vs {1,3}: all four edges cross.
        assert_eq!(g.cut_size(&[true, false, true, false]), 4);
    }

    #[test]
    fn isolate_node_removes_incident_edges_only() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.isolate_node(0);
        assert_eq!(g.degree(0), 0);
        assert!(g.has_edge(2, 3));
        assert_eq!(g.num_edges(), 1);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn edges_within_subset() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let set: BTreeSet<_> = [0, 1, 2].into_iter().collect();
        assert_eq!(g.edges_within(&set), 2);
        let set2: BTreeSet<_> = [0, 3].into_iter().collect();
        assert_eq!(g.edges_within(&set2), 0);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 1);
        assert_eq!(e.a, 1);
        assert_eq!(e.b, 3);
        assert_eq!(e.other(1), Some(3));
        assert_eq!(e.other(3), Some(1));
        assert_eq!(e.other(7), None);
    }

    #[test]
    fn display_edge() {
        assert_eq!(Edge::new(5, 2).to_string(), "(2, 5)");
    }
}
