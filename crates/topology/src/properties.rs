//! Structural properties of switch-level topologies: path-length
//! distributions, diameter, reachability profiles.
//!
//! These drive Figure 1(c) (fraction of server pairs within h hops) and
//! Figure 5 (mean path length and diameter versus network size).
//!
//! The all-pairs sweeps ([`path_length_stats`], [`server_pair_histogram`])
//! run one BFS per source over a [`CsrGraph`] snapshot, parallelized across
//! sources with rayon. All accumulation is per-source and merged in source
//! order, so results are bit-identical to a serial sweep.

use crate::bfs::{bfs_into, BfsScratch, UNREACHED};
use crate::csr::CsrGraph;
use crate::graph::{Graph, NodeId};
use crate::topology::Topology;
use rayon::prelude::*;

/// Summary statistics of the all-pairs shortest-path-length distribution
/// between switches.
#[derive(Debug, Clone, PartialEq)]
pub struct PathLengthStats {
    /// Mean shortest-path length over all ordered reachable pairs.
    pub mean: f64,
    /// Maximum shortest-path length (graph diameter); 0 for graphs with < 2 nodes.
    pub diameter: usize,
    /// `histogram[d]` = number of ordered switch pairs at distance `d`
    /// (index 0 unused except for the trivial self-distance, which is not counted).
    pub histogram: Vec<usize>,
    /// Number of ordered pairs that are unreachable from each other.
    pub unreachable_pairs: usize,
}

impl PathLengthStats {
    /// Fraction of reachable ordered pairs whose distance is `<= h` hops.
    pub fn fraction_within(&self, h: usize) -> f64 {
        let total: usize = self.histogram.iter().skip(1).sum();
        if total == 0 {
            return 0.0;
        }
        let within: usize = self.histogram.iter().skip(1).take(h).sum();
        within as f64 / total as f64
    }

    /// The `q`-quantile (0 <= q <= 1) of the pairwise distance distribution.
    pub fn quantile(&self, q: f64) -> usize {
        let total: usize = self.histogram.iter().skip(1).sum();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as usize;
        let mut acc = 0usize;
        for (d, &count) in self.histogram.iter().enumerate().skip(1) {
            acc += count;
            if acc >= target.max(1) {
                return d;
            }
        }
        self.diameter
    }
}

/// Breadth-first distances from `source` to every node (usize::MAX when
/// unreachable).
///
/// Thin wrapper: snapshots the graph and runs the one BFS kernel of the
/// workspace ([`CsrGraph::bfs_distances`], backed by [`crate::bfs`]). Tight
/// loops should snapshot once and call the kernel directly.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<usize> {
    CsrGraph::from_graph(graph).bfs_distances(source)
}

/// Computes the switch-to-switch path-length statistics via repeated BFS.
///
/// Convenience wrapper that snapshots the graph; use [`path_length_stats_csr`]
/// when a [`CsrGraph`] is already at hand.
pub fn path_length_stats(graph: &Graph) -> PathLengthStats {
    path_length_stats_csr(&CsrGraph::from_graph(graph))
}

/// Per-source partial of the all-pairs sweep; merged in source order.
struct SourcePartial {
    histogram: Vec<usize>,
    sum: u64,
    count: u64,
    diameter: usize,
    unreachable: usize,
}

fn source_partial(
    csr: &CsrGraph,
    src: NodeId,
    row: &mut [u32],
    scratch: &mut BfsScratch,
) -> SourcePartial {
    let mut partial =
        SourcePartial { histogram: Vec::new(), sum: 0, count: 0, diameter: 0, unreachable: 0 };
    bfs_into(csr, src, row, scratch);
    for (dst, &d) in row.iter().enumerate() {
        if dst == src {
            continue;
        }
        if d == UNREACHED {
            partial.unreachable += 1;
            continue;
        }
        let d = d as usize;
        if d >= partial.histogram.len() {
            partial.histogram.resize(d + 1, 0);
        }
        partial.histogram[d] += 1;
        partial.sum += d as u64;
        partial.count += 1;
        partial.diameter = partial.diameter.max(d);
    }
    partial
}

/// Below this node count the whole sweep is microseconds, so the parallel
/// fan-out's thread spawns would dominate; tight callers (the
/// degree-diameter annealer calls this once per candidate swap) stay serial.
const PARALLEL_SWEEP_MIN_NODES: usize = 128;

/// [`path_length_stats`] over an existing CSR snapshot: one rayon task per
/// BFS source, with deterministic (source-ordered) merging. Small graphs run
/// serially — the merge order makes both paths bit-identical.
pub fn path_length_stats_csr(csr: &CsrGraph) -> PathLengthStats {
    let n = csr.num_nodes();
    let partials: Vec<SourcePartial> = if n < PARALLEL_SWEEP_MIN_NODES {
        // Serial sweep: one distance row and one scratch reused across all
        // sources — the per-source allocations of the old kernel are gone.
        let mut row = vec![UNREACHED; n];
        let mut scratch = BfsScratch::new(n);
        csr.nodes().map(|src| source_partial(csr, src, &mut row, &mut scratch)).collect()
    } else {
        csr.nodes()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|src| {
                let mut row = vec![UNREACHED; n];
                let mut scratch = BfsScratch::new(n);
                source_partial(csr, src, &mut row, &mut scratch)
            })
            .collect()
    };
    let mut histogram: Vec<usize> = Vec::new();
    let mut sum = 0u64;
    let mut count = 0u64;
    let mut diameter = 0usize;
    let mut unreachable = 0usize;
    for p in partials {
        if p.histogram.len() > histogram.len() {
            histogram.resize(p.histogram.len(), 0);
        }
        for (d, c) in p.histogram.into_iter().enumerate() {
            histogram[d] += c;
        }
        sum += p.sum;
        count += p.count;
        diameter = diameter.max(p.diameter);
        unreachable += p.unreachable;
    }
    PathLengthStats {
        mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
        diameter,
        histogram,
        unreachable_pairs: unreachable,
    }
}

/// Server-pair path-length histogram: the distance between two servers is the
/// switch-to-switch distance between their ToR switches plus two server
/// links (servers on the same switch are 2 hops apart).
///
/// Returns `histogram[h]` = number of ordered server pairs at exactly `h`
/// hops, which is what Figure 1(c) plots (as fractions).
pub fn server_pair_histogram(topo: &Topology) -> Vec<u64> {
    server_pair_histogram_csr(topo, &topo.csr())
}

/// [`server_pair_histogram`] over an existing CSR snapshot: one rayon task
/// per source switch, merged deterministically.
pub fn server_pair_histogram_csr(topo: &Topology, csr: &CsrGraph) -> Vec<u64> {
    let bump = |h: usize, pairs: u64, hist: &mut Vec<u64>| {
        if pairs == 0 {
            return;
        }
        if h >= hist.len() {
            hist.resize(h + 1, 0);
        }
        hist[h] += pairs;
    };
    let n = csr.num_nodes();
    let sources: Vec<NodeId> = csr.nodes().filter(|&v| topo.servers(v) > 0).collect();
    let partials: Vec<Vec<u64>> = sources
        .into_par_iter()
        .map(|src| {
            let s_src = topo.servers(src) as u64;
            let mut hist: Vec<u64> = Vec::new();
            // Same-switch pairs: distance 2, ordered pairs s*(s-1).
            bump(2, s_src * (s_src.saturating_sub(1)), &mut hist);
            let mut row = vec![UNREACHED; n];
            let mut scratch = BfsScratch::new(n);
            bfs_into(csr, src, &mut row, &mut scratch);
            for (dst, &d) in row.iter().enumerate() {
                if dst == src || d == UNREACHED {
                    continue;
                }
                bump(d as usize + 2, s_src * topo.servers(dst) as u64, &mut hist);
            }
            hist
        })
        .collect();
    let mut histogram: Vec<u64> = Vec::new();
    for p in partials {
        if p.len() > histogram.len() {
            histogram.resize(p.len(), 0);
        }
        for (h, c) in p.into_iter().enumerate() {
            histogram[h] += c;
        }
    }
    histogram
}

/// Fraction of ordered server pairs within `h` hops, from a histogram
/// produced by [`server_pair_histogram`].
pub fn fraction_of_server_pairs_within(histogram: &[u64], h: usize) -> f64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let within: u64 = histogram.iter().take(h + 1).sum();
    within as f64 / total as f64
}

/// Number of switches reachable from `source` within `h` hops (excluding the
/// source itself). Used for the "concentric rings" intuition of Figure 1.
pub fn reachable_within(graph: &Graph, source: NodeId, h: usize) -> usize {
    bfs_distances(graph, source)
        .iter()
        .enumerate()
        .filter(|&(v, &d)| v != source && d != usize::MAX && d <= h)
        .count()
}

/// Theoretical diameter upper bound for random regular graphs
/// (Bollobás & de la Vega): `1 + ceil(log_{r-1}((2 + eps) * r * N * ln N))`.
///
/// Returns `None` when `r < 3` (the bound needs `r - 1 >= 2`).
pub fn rrg_diameter_upper_bound(n: usize, r: usize, eps: f64) -> Option<usize> {
    if r < 3 || n < 2 {
        return None;
    }
    let n_f = n as f64;
    let r_f = r as f64;
    let inner = (2.0 + eps) * r_f * n_f * n_f.ln();
    let log = inner.ln() / (r_f - 1.0).ln();
    Some(1 + log.ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::rrg::JellyfishBuilder;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn bfs_on_path_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_nodes() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn cycle_statistics() {
        let g = cycle(6);
        let stats = path_length_stats(&g);
        assert_eq!(stats.diameter, 3);
        // Distances from any node: 1,1,2,2,3 -> mean 1.8.
        assert!((stats.mean - 1.8).abs() < 1e-12);
        assert_eq!(stats.unreachable_pairs, 0);
        assert_eq!(stats.histogram[1], 12);
        assert_eq!(stats.histogram[2], 12);
        assert_eq!(stats.histogram[3], 6);
        assert!((stats.fraction_within(2) - 24.0 / 30.0).abs() < 1e-12);
        assert_eq!(stats.quantile(0.5), 2);
        assert_eq!(stats.quantile(1.0), 3);
    }

    #[test]
    fn disconnected_pairs_counted() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let stats = path_length_stats(&g);
        assert_eq!(stats.unreachable_pairs, 8);
        assert_eq!(stats.diameter, 1);
    }

    #[test]
    fn jellyfish_shorter_paths_than_fat_tree_same_equipment() {
        // The headline observation behind Figure 1(c): with the same
        // equipment, the RRG has a lower mean inter-switch path length.
        let (ft, jf) = crate::fattree::same_equipment_pair(6, 54, 2).unwrap();
        let ft_stats = path_length_stats(ft.topology().graph());
        let jf_stats = path_length_stats(jf.graph());
        assert!(
            jf_stats.mean < ft_stats.mean,
            "jellyfish mean {} not below fat-tree mean {}",
            jf_stats.mean,
            ft_stats.mean
        );
        assert!(jf_stats.diameter <= ft_stats.diameter);
    }

    #[test]
    fn server_pair_histogram_single_switch() {
        let g = Graph::new(1);
        let topo = Topology::homogeneous(g, 4, 3);
        let hist = server_pair_histogram(&topo);
        // 3 servers on one switch: 6 ordered pairs, all at 2 hops.
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[2], 6);
        assert!((fraction_of_server_pairs_within(&hist, 2) - 1.0).abs() < 1e-12);
        assert_eq!(fraction_of_server_pairs_within(&hist, 1), 0.0);
    }

    #[test]
    fn server_pair_histogram_two_switches() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let topo = Topology::homogeneous(g, 4, 2);
        let hist = server_pair_histogram(&topo);
        // Same-switch: 2 switches × 2 ordered pairs = 4 at distance 2.
        // Cross-switch: 2×2 ordered pairs × 2 directions = 8 at distance 3.
        assert_eq!(hist[2], 4);
        assert_eq!(hist[3], 8);
        let total: u64 = hist.iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn fig1c_shape_686_servers() {
        // Scaled-down check of the Fig. 1(c) claim: in Jellyfish nearly all
        // server pairs are within 5 hops while in the same-equipment fat-tree
        // only a small fraction is. (Full 686-server check runs in the
        // integration tests / figures binary.)
        let ft = FatTree::new(8).unwrap(); // 80 switches, 128 servers
        let jf = JellyfishBuilder::new(80, 8, 6).seed(4).build().unwrap();
        let ft_hist = server_pair_histogram(ft.topology());
        let jf_hist = server_pair_histogram(&jf);
        let ft_frac5 = fraction_of_server_pairs_within(&ft_hist, 5);
        let jf_frac5 = fraction_of_server_pairs_within(&jf_hist, 5);
        assert!(jf_frac5 > ft_frac5, "jellyfish {jf_frac5} <= fat-tree {ft_frac5}");
        assert!(jf_frac5 > 0.9);
    }

    #[test]
    fn reachable_within_counts_rings() {
        let g = cycle(8);
        assert_eq!(reachable_within(&g, 0, 1), 2);
        assert_eq!(reachable_within(&g, 0, 2), 4);
        assert_eq!(reachable_within(&g, 0, 4), 7);
    }

    #[test]
    fn rrg_diameter_bound_matches_paper_growth() {
        // The bound grows logarithmically with N (base r-1); spot-check
        // monotonicity and rough magnitude for k=48, r=36 switches.
        let b1 = rrg_diameter_upper_bound(100, 36, 0.1).unwrap();
        let b2 = rrg_diameter_upper_bound(3200, 36, 0.1).unwrap();
        assert!(b2 >= b1);
        assert!(b2 <= 8, "bound unexpectedly large: {b2}");
        assert!(rrg_diameter_upper_bound(100, 2, 0.1).is_none());
    }

    #[test]
    fn measured_diameter_within_theoretical_bound() {
        let topo = JellyfishBuilder::new(200, 12, 9).seed(5).build().unwrap();
        let stats = path_length_stats(topo.graph());
        let bound = rrg_diameter_upper_bound(200, 9, 0.1).unwrap();
        assert!(stats.diameter <= bound, "diameter {} exceeds bound {}", stats.diameter, bound);
    }
}
