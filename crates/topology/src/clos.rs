//! Folded-Clos (leaf–spine) generator and a budgeted Clos upgrade planner.
//!
//! The upgrade planner is this repository's stand-in for LEGUP (Curtis,
//! Keshav, Lopez-Ortiz, CoNEXT 2010), whose implementation and topologies are
//! not public. See DESIGN.md, substitution 3: per expansion stage the planner
//! spends a budget on new spine switches and uplinks while reserving a
//! fraction of ports for later stages — the structural behaviour the paper
//! attributes to LEGUP. Jellyfish at the same budget simply buys switches and
//! random-cables them, which is what `jellyfish-core::legup` compares against.

use crate::graph::Graph;
use crate::topology::{SwitchKind, Topology, TopologyError};

/// A two-level folded-Clos (leaf–spine) network.
///
/// `leaves` leaf switches each connect to every one of the `spines` spine
/// switches with `links_per_pair` parallel-free links (we keep the graph
/// simple, so `links_per_pair` is capped at 1; oversubscription is expressed
/// through the server count instead).
#[derive(Debug, Clone)]
pub struct ClosConfig {
    /// Number of leaf (ToR) switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Ports per leaf switch.
    pub leaf_ports: usize,
    /// Ports per spine switch.
    pub spine_ports: usize,
    /// Servers attached to each leaf.
    pub servers_per_leaf: usize,
}

impl ClosConfig {
    /// Validates and builds the leaf–spine topology.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        if self.leaves == 0 || self.spines == 0 {
            return Err(TopologyError::InvalidParameters(
                "need at least one leaf and one spine".into(),
            ));
        }
        if self.servers_per_leaf + self.spines > self.leaf_ports {
            return Err(TopologyError::InvalidParameters(format!(
                "leaf needs {} ports ({} servers + {} spines) but has {}",
                self.servers_per_leaf + self.spines,
                self.servers_per_leaf,
                self.spines,
                self.leaf_ports
            )));
        }
        if self.leaves > self.spine_ports {
            return Err(TopologyError::InvalidParameters(format!(
                "spine needs {} ports but has {}",
                self.leaves, self.spine_ports
            )));
        }
        let n = self.leaves + self.spines;
        let mut g = Graph::new(n);
        for leaf in 0..self.leaves {
            for spine in 0..self.spines {
                g.add_edge(leaf, self.leaves + spine);
            }
        }
        let mut ports = vec![self.leaf_ports; self.leaves];
        ports.extend(vec![self.spine_ports; self.spines]);
        let mut servers = vec![self.servers_per_leaf; self.leaves];
        servers.extend(vec![0usize; self.spines]);
        let mut kinds = vec![SwitchKind::TopOfRack; self.leaves];
        kinds.extend(vec![SwitchKind::Aggregation; self.spines]);
        let topo = Topology::from_parts(
            g,
            ports,
            servers,
            kinds,
            format!("clos(leaves={},spines={})", self.leaves, self.spines),
        );
        debug_assert!(topo.check_invariants().is_ok());
        Ok(topo)
    }

    /// Oversubscription ratio at the leaf layer: server bandwidth divided by
    /// uplink bandwidth (1.0 means non-blocking, larger means oversubscribed).
    pub fn oversubscription(&self) -> f64 {
        self.servers_per_leaf as f64 / self.spines as f64
    }
}

/// Cost model shared by the LEGUP-style planner and the Jellyfish expansion
/// comparison (Figure 7). All prices are in the same arbitrary currency the
/// paper's budget axis uses.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Price of one switch port (switch cost is ports × this).
    pub per_port: f64,
    /// Price of one cable (material + labor).
    pub per_cable: f64,
    /// Price of re-running one existing cable during an upgrade.
    pub per_rewire: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Roughly commodity numbers: $100/port, $10/cable, $5 to move a cable.
        CostModel { per_port: 100.0, per_cable: 10.0, per_rewire: 5.0 }
    }
}

impl CostModel {
    /// Cost of buying a switch with `ports` ports.
    pub fn switch_cost(&self, ports: usize) -> f64 {
        self.per_port * ports as f64
    }

    /// Cost of a whole topology bought from scratch: all ports plus one cable
    /// per switch-to-switch link and per server.
    pub fn greenfield_cost(&self, topo: &Topology) -> f64 {
        self.per_port * topo.total_ports() as f64
            + self.per_cable * (topo.num_links() + topo.total_servers()) as f64
    }
}

/// One stage of a Clos expansion plan.
#[derive(Debug, Clone)]
pub struct ClosStage {
    /// The topology after this stage.
    pub topology: Topology,
    /// Money spent in this stage.
    pub spent: f64,
    /// Number of spine switches after this stage.
    pub spines: usize,
    /// Number of leaves after this stage.
    pub leaves: usize,
}

/// A LEGUP-style upgrade planner for leaf–spine Clos networks.
///
/// Starting from an initial `ClosConfig`, each call to
/// [`ClosUpgradePlanner::expand`] spends at most `budget` on additional spine
/// switches (and the cables to wire them to every leaf), after optionally
/// adding leaves to host new servers. A fraction of each new spine's ports is
/// reserved for future leaves — the "keep some ports free to ease expansion"
/// behaviour of LEGUP that the paper identifies as a structural tax.
#[derive(Debug, Clone)]
pub struct ClosUpgradePlanner {
    cost: CostModel,
    /// Fraction of spine ports intentionally left unused for future growth.
    pub reserve_fraction: f64,
    /// Port count of every newly purchased spine switch.
    pub spine_ports: usize,
    /// Port count of every newly purchased leaf switch.
    pub leaf_ports: usize,
    current: ClosConfig,
}

impl ClosUpgradePlanner {
    /// Creates a planner starting from `initial`.
    pub fn new(initial: ClosConfig, cost: CostModel, reserve_fraction: f64) -> Self {
        ClosUpgradePlanner {
            cost,
            reserve_fraction: reserve_fraction.clamp(0.0, 0.9),
            spine_ports: initial.spine_ports,
            leaf_ports: initial.leaf_ports,
            current: initial,
        }
    }

    /// The current Clos configuration.
    pub fn current(&self) -> &ClosConfig {
        &self.current
    }

    /// Expands the network: first adds `new_leaves` leaf switches (with
    /// `servers_per_leaf` servers, matching the existing leaves), then spends
    /// the remaining budget on spine switches. Every new spine must be wired
    /// to every leaf (Clos structure), and every new leaf must be wired to
    /// every spine — this full-mesh rewiring is precisely what makes Clos
    /// expansion expensive.
    ///
    /// Returns the resulting stage; the planner's internal state advances.
    pub fn expand(&mut self, budget: f64, new_leaves: usize) -> Result<ClosStage, TopologyError> {
        let mut remaining = budget;
        let mut cfg = self.current.clone();

        // Step 1: add leaves (mandatory server growth), paying ports + cables
        // to every existing spine.
        if new_leaves > 0 {
            let leaf_cost = self.cost.switch_cost(self.leaf_ports)
                + self.cost.per_cable * (cfg.spines + cfg.servers_per_leaf) as f64;
            let affordable = (remaining / leaf_cost).floor() as usize;
            let added = new_leaves.min(affordable);
            if added < new_leaves {
                return Err(TopologyError::Infeasible(format!(
                    "budget {budget} cannot cover {new_leaves} new leaves (each costs {leaf_cost})"
                )));
            }
            cfg.leaves += added;
            remaining -= leaf_cost * added as f64;
        }

        // Step 2: spend the rest on spine switches. A spine's usable ports are
        // reduced by the reserve fraction, and it must connect to every leaf.
        loop {
            let usable =
                ((self.spine_ports as f64) * (1.0 - self.reserve_fraction)).floor() as usize;
            if usable < cfg.leaves {
                break; // a new spine cannot even reach all leaves: stop buying
            }
            let spine_cost =
                self.cost.switch_cost(self.spine_ports) + self.cost.per_cable * cfg.leaves as f64;
            if spine_cost > remaining {
                break;
            }
            // Adding a spine also requires each leaf to have a free port.
            if cfg.servers_per_leaf + cfg.spines + 1 > self.leaf_ports {
                break;
            }
            cfg.spines += 1;
            remaining -= spine_cost;
        }
        cfg.leaf_ports = self.leaf_ports;
        cfg.spine_ports = self.spine_ports;

        let topology = cfg.build()?;
        let spent = budget - remaining;
        self.current = cfg.clone();
        Ok(ClosStage { topology, spent, spines: cfg.spines, leaves: cfg.leaves })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_clos() -> ClosConfig {
        ClosConfig { leaves: 8, spines: 4, leaf_ports: 16, spine_ports: 32, servers_per_leaf: 10 }
    }

    #[test]
    fn clos_builds_complete_bipartite_core() {
        let topo = small_clos().build().unwrap();
        assert_eq!(topo.num_switches(), 12);
        assert_eq!(topo.num_links(), 8 * 4);
        assert_eq!(topo.total_servers(), 80);
        for leaf in 0..8 {
            assert_eq!(topo.graph().degree(leaf), 4);
            assert_eq!(topo.kind(leaf), SwitchKind::TopOfRack);
        }
        for spine in 8..12 {
            assert_eq!(topo.graph().degree(spine), 8);
            assert_eq!(topo.kind(spine), SwitchKind::Aggregation);
            assert_eq!(topo.servers(spine), 0);
        }
        assert!(topo.graph().is_connected());
    }

    #[test]
    fn clos_validation_errors() {
        let mut c = small_clos();
        c.leaf_ports = 10; // 10 servers + 4 spines needs 14
        assert!(c.build().is_err());
        let mut c2 = small_clos();
        c2.spine_ports = 4; // 8 leaves need 8 spine ports
        assert!(c2.build().is_err());
        let mut c3 = small_clos();
        c3.leaves = 0;
        assert!(c3.build().is_err());
    }

    #[test]
    fn oversubscription_ratio() {
        let c = small_clos();
        assert!((c.oversubscription() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cost_model_greenfield() {
        let topo = small_clos().build().unwrap();
        let cost = CostModel::default();
        let expected = 100.0 * topo.total_ports() as f64 + 10.0 * (32 + 80) as f64;
        assert!((cost.greenfield_cost(&topo) - expected).abs() < 1e-9);
        assert!((cost.switch_cost(48) - 4800.0).abs() < 1e-9);
    }

    #[test]
    fn planner_buys_spines_within_budget() {
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.25);
        let stage = planner.expand(3_300.0, 0).unwrap();
        // Each spine costs 3200 (ports) + 80 (cables) = 3280 => exactly one
        // more spine fits in the budget.
        assert_eq!(stage.spines, 5);
        assert!(stage.spent <= 3_300.0);
        assert!(stage.topology.check_invariants().is_ok());
    }

    #[test]
    fn planner_adds_leaves_then_spines() {
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.0);
        let stage = planner.expand(20_000.0, 4).unwrap();
        assert_eq!(stage.leaves, 12);
        assert!(stage.spines >= 4);
        assert_eq!(stage.topology.total_servers(), 12 * 10);
    }

    #[test]
    fn planner_errors_when_leaves_unaffordable() {
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.0);
        assert!(planner.expand(100.0, 5).is_err());
    }

    #[test]
    fn planner_respects_leaf_port_limit() {
        // Leaves have 16 ports, 10 servers: at most 6 spines ever.
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.0);
        let stage = planner.expand(1e9, 0).unwrap();
        assert_eq!(stage.spines, 6);
    }

    #[test]
    fn reserve_fraction_limits_spine_usefulness() {
        // With 8 leaves and 32-port spines, a 0.8 reserve leaves only 6 usable
        // ports per new spine: no spine can reach all leaves, so none is bought.
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.8);
        let stage = planner.expand(1e9, 0).unwrap();
        assert_eq!(stage.spines, 4);
    }

    #[test]
    fn successive_stages_accumulate() {
        let mut planner = ClosUpgradePlanner::new(small_clos(), CostModel::default(), 0.1);
        let s1 = planner.expand(5_000.0, 0).unwrap();
        let s2 = planner.expand(5_000.0, 0).unwrap();
        assert!(s2.spines >= s1.spines);
        assert_eq!(planner.current().spines, s2.spines);
    }
}
