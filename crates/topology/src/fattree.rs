//! Three-level k-ary fat-tree generator (Al-Fares et al., SIGCOMM 2008),
//! the paper's primary baseline.
//!
//! A fat-tree built from `k`-port switches (k even) has:
//!
//! * `k` pods, each with `k/2` edge switches and `k/2` aggregation switches;
//! * `(k/2)^2` core switches;
//! * `k^3/4` servers (each edge switch hosts `k/2` servers);
//! * full bisection bandwidth.
//!
//! The total switch count is `5k^2/4` and every switch uses all `k` ports,
//! which is exactly the "same equipment" accounting the paper uses when
//! comparing against Jellyfish.

use crate::graph::{Graph, NodeId};
use crate::topology::{SwitchKind, Topology, TopologyError};

/// A generated fat-tree, exposing both the [`Topology`] and the layer
/// structure (useful for cabling-layout experiments in §6).
#[derive(Debug, Clone)]
pub struct FatTree {
    topology: Topology,
    k: usize,
    edge: Vec<NodeId>,
    aggregation: Vec<NodeId>,
    core: Vec<NodeId>,
}

impl FatTree {
    /// Builds a 3-level fat-tree from `k`-port switches. `k` must be even and
    /// at least 2.
    pub fn new(k: usize) -> Result<Self, TopologyError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::InvalidParameters(format!(
                "fat-tree requires an even port count >= 2, got {k}"
            )));
        }
        let half = k / 2;
        let num_edge = k * half; // k pods × k/2 edge switches
        let num_agg = k * half;
        let num_core = half * half;
        let n = num_edge + num_agg + num_core;

        // Node numbering: edge switches first (pod-major), then aggregation
        // (pod-major), then core.
        let edge_id = |pod: usize, idx: usize| pod * half + idx;
        let agg_id = |pod: usize, idx: usize| num_edge + pod * half + idx;
        let core_id = |i: usize, j: usize| num_edge + num_agg + i * half + j;

        let mut g = Graph::new(n);
        // Edge <-> aggregation: complete bipartite graph within each pod.
        for pod in 0..k {
            for e in 0..half {
                for a in 0..half {
                    g.add_edge(edge_id(pod, e), agg_id(pod, a));
                }
            }
        }
        // Aggregation <-> core: aggregation switch `a` of every pod connects
        // to core switches in "row" a (cores core_id(a, 0..half)).
        for pod in 0..k {
            for a in 0..half {
                for j in 0..half {
                    g.add_edge(agg_id(pod, a), core_id(a, j));
                }
            }
        }

        let mut servers = vec![0usize; n];
        let mut kinds = vec![SwitchKind::Core; n];
        let mut edge_nodes = Vec::with_capacity(num_edge);
        let mut agg_nodes = Vec::with_capacity(num_agg);
        let mut core_nodes = Vec::with_capacity(num_core);
        for pod in 0..k {
            for e in 0..half {
                let id = edge_id(pod, e);
                servers[id] = half;
                kinds[id] = SwitchKind::TopOfRack;
                edge_nodes.push(id);
            }
            for a in 0..half {
                let id = agg_id(pod, a);
                kinds[id] = SwitchKind::Aggregation;
                agg_nodes.push(id);
            }
        }
        for i in 0..half {
            for j in 0..half {
                core_nodes.push(core_id(i, j));
            }
        }

        let topology =
            Topology::from_parts(g, vec![k; n], servers, kinds, format!("fat-tree(k={k})"));
        debug_assert!(topology.check_invariants().is_ok());
        Ok(FatTree { topology, k, edge: edge_nodes, aggregation: agg_nodes, core: core_nodes })
    }

    /// The switch port count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the fat-tree, returning the topology.
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// Edge-layer (ToR) switches, pod-major order.
    pub fn edge_switches(&self) -> &[NodeId] {
        &self.edge
    }

    /// Aggregation-layer switches, pod-major order.
    pub fn aggregation_switches(&self) -> &[NodeId] {
        &self.aggregation
    }

    /// Core switches.
    pub fn core_switches(&self) -> &[NodeId] {
        &self.core
    }

    /// Pod index of a non-core switch (edge or aggregation).
    pub fn pod_of(&self, node: NodeId) -> Option<usize> {
        let half = self.k / 2;
        let num_edge = self.k * half;
        if node < num_edge {
            Some(node / half)
        } else if node < 2 * num_edge {
            Some((node - num_edge) / half)
        } else {
            None
        }
    }

    /// Number of servers in a full fat-tree built from `k`-port switches:
    /// `k^3 / 4`.
    pub fn servers_for_port_count(k: usize) -> usize {
        k * k * k / 4
    }

    /// Number of switches in a full fat-tree built from `k`-port switches:
    /// `5 k^2 / 4`.
    pub fn switches_for_port_count(k: usize) -> usize {
        5 * k * k / 4
    }

    /// Total port count (the paper's equipment-cost measure): `5 k^3 / 4`.
    pub fn ports_for_port_count(k: usize) -> usize {
        5 * k * k * k / 4
    }

    /// Number of edges crossing the worst-case bisection of a full-bisection
    /// fat-tree: `k^3 / 8` (half the servers' uplink capacity).
    pub fn bisection_links_for_port_count(k: usize) -> usize {
        k * k * k / 8
    }

    /// Fraction of switch-to-switch links that stay within a pod when the
    /// fat-tree is laid out one-pod-per-container (§6.3): `0.5 (1 + 1/k)`.
    pub fn local_link_fraction(k: usize) -> f64 {
        0.5 * (1.0 + 1.0 / k as f64)
    }
}

/// Builds a fat-tree and a same-equipment Jellyfish topology: identical
/// switch count and port count, with the requested number of servers spread
/// as evenly as possible across all switches.
///
/// This is the comparison setup used throughout the paper ("using the same
/// switching equipment"). Returns `(fat_tree, jellyfish)`.
pub fn same_equipment_pair(
    k: usize,
    jellyfish_servers: usize,
    seed: u64,
) -> Result<(FatTree, Topology), TopologyError> {
    let ft = FatTree::new(k)?;
    let n = FatTree::switches_for_port_count(k);
    if jellyfish_servers > n * (k - 1) {
        return Err(TopologyError::InvalidParameters(format!(
            "cannot attach {jellyfish_servers} servers to {n} switches with {k} ports"
        )));
    }
    // Spread servers as evenly as possible; each switch keeps the rest of its
    // ports for the network.
    let base = jellyfish_servers / n;
    let extra = jellyfish_servers % n;
    let ports: Vec<usize> = vec![k; n];
    let servers_per: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    let degrees: Vec<usize> = (0..n).map(|i| k - servers_per[i]).collect();
    let jf = crate::rrg::build_heterogeneous(&ports, &degrees, seed)?
        .with_name(format!("jellyfish-same-equipment(k={k})"));
    Ok((ft, jf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_fat_tree_structure() {
        let ft = FatTree::new(4).unwrap();
        let t = ft.topology();
        assert_eq!(t.num_switches(), 20);
        assert_eq!(ft.edge_switches().len(), 8);
        assert_eq!(ft.aggregation_switches().len(), 8);
        assert_eq!(ft.core_switches().len(), 4);
        assert_eq!(t.total_servers(), 16);
        // Every switch uses exactly k ports.
        for v in t.graph().nodes() {
            assert_eq!(t.graph().degree(v) + t.servers(v), 4);
            assert_eq!(t.free_ports(v), 0);
        }
        assert!(t.graph().is_connected());
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn counts_match_formulas() {
        for k in [4usize, 6, 8, 14] {
            let ft = FatTree::new(k).unwrap();
            assert_eq!(ft.topology().num_switches(), FatTree::switches_for_port_count(k));
            assert_eq!(ft.topology().total_servers(), FatTree::servers_for_port_count(k));
            assert_eq!(ft.topology().total_ports(), FatTree::ports_for_port_count(k));
            // Switch-to-switch links: k^3/2 per the paper (§4.1).
            assert_eq!(ft.topology().num_links(), k * k * k / 2);
        }
    }

    #[test]
    fn paper_example_sizes() {
        // §1: full-bisection fat-trees exist at 3456, 8192, 27648, 65536
        // servers for 24, 32, 48, 64-port switches.
        assert_eq!(FatTree::servers_for_port_count(24), 3456);
        assert_eq!(FatTree::servers_for_port_count(32), 8192);
        assert_eq!(FatTree::servers_for_port_count(48), 27648);
        assert_eq!(FatTree::servers_for_port_count(64), 65536);
        // Fig. 1(c): the 686-server fat-tree uses k=14.
        assert_eq!(FatTree::servers_for_port_count(14), 686);
    }

    #[test]
    fn odd_or_tiny_k_rejected() {
        assert!(FatTree::new(3).is_err());
        assert!(FatTree::new(0).is_err());
        assert!(FatTree::new(5).is_err());
    }

    #[test]
    fn diameter_is_six_hops_server_to_server() {
        // Switch-level diameter of a 3-level fat-tree is 4 (edge-agg-core-agg-edge),
        // i.e. 6 server-to-server as the paper counts server links.
        let ft = FatTree::new(4).unwrap();
        let stats = crate::properties::path_length_stats(ft.topology().graph());
        assert_eq!(stats.diameter, 4);
    }

    #[test]
    fn pods_are_identified_correctly() {
        let ft = FatTree::new(4).unwrap();
        // First pod's edge switches are nodes 0,1; aggregation 8,9.
        assert_eq!(ft.pod_of(0), Some(0));
        assert_eq!(ft.pod_of(1), Some(0));
        assert_eq!(ft.pod_of(2), Some(1));
        assert_eq!(ft.pod_of(8), Some(0));
        assert_eq!(ft.pod_of(9), Some(0));
        assert_eq!(ft.pod_of(10), Some(1));
        // Core switches have no pod.
        assert_eq!(ft.pod_of(16), None);
    }

    #[test]
    fn core_switches_reach_every_pod() {
        let ft = FatTree::new(6).unwrap();
        let t = ft.topology();
        for &c in ft.core_switches() {
            let mut pods: Vec<usize> =
                t.graph().neighbors(c).iter().filter_map(|&v| ft.pod_of(v)).collect();
            pods.sort_unstable();
            pods.dedup();
            assert_eq!(pods.len(), 6, "core switch {c} does not reach all pods");
        }
    }

    #[test]
    fn kinds_assigned_per_layer() {
        let ft = FatTree::new(4).unwrap();
        let t = ft.topology();
        for &e in ft.edge_switches() {
            assert_eq!(t.kind(e), SwitchKind::TopOfRack);
            assert_eq!(t.servers(e), 2);
        }
        for &a in ft.aggregation_switches() {
            assert_eq!(t.kind(a), SwitchKind::Aggregation);
            assert_eq!(t.servers(a), 0);
        }
        for &c in ft.core_switches() {
            assert_eq!(t.kind(c), SwitchKind::Core);
            assert_eq!(t.servers(c), 0);
        }
    }

    #[test]
    fn local_link_fraction_formula() {
        assert!((FatTree::local_link_fraction(4) - 0.625).abs() < 1e-12);
        assert!((FatTree::local_link_fraction(14) - 0.5 * (1.0 + 1.0 / 14.0)).abs() < 1e-12);
        // Paper §6.3 quotes 53.6% for the evaluated fat-tree (k=14).
        assert!((FatTree::local_link_fraction(14) - 0.536).abs() < 2e-3);
    }

    #[test]
    fn same_equipment_pair_matches_ports_and_switches() {
        let (ft, jf) = same_equipment_pair(6, 80, 3).unwrap();
        assert_eq!(ft.topology().num_switches(), jf.num_switches());
        assert_eq!(ft.topology().total_ports(), jf.total_ports());
        assert_eq!(jf.total_servers(), 80);
        assert!(jf.graph().is_connected());
    }

    #[test]
    fn same_equipment_pair_rejects_too_many_servers() {
        assert!(same_equipment_pair(4, 1000, 0).is_err());
    }
}
