//! Jellyfish topology construction: a degree-bounded random (near-)regular
//! graph among top-of-rack switches (paper §3).
//!
//! The construction follows the paper's "sufficiently uniform" procedure:
//! repeatedly pick a random pair of switches that both have free network
//! ports and are not already neighbors, and join them. When no such pair
//! remains but some switch still has two or more free ports, incorporate
//! those ports by removing a uniform-random existing link `(x, y)` and adding
//! `(p, x)` and `(p, y)`. At most one port in the whole network may remain
//! unmatched.

use crate::graph::Graph;
use crate::topology::{SwitchKind, Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for Jellyfish random-regular-graph topologies `RRG(N, k, r)`.
///
/// * `switches` — number of ToR switches `N`;
/// * `ports` — ports per switch `k`;
/// * `network_degree` — ports used for the switch-to-switch network `r`
///   (the remaining `k - r` ports carry servers).
///
/// ```
/// use jellyfish_topology::JellyfishBuilder;
/// let topo = JellyfishBuilder::new(30, 8, 5).seed(42).build().unwrap();
/// assert_eq!(topo.num_switches(), 30);
/// assert_eq!(topo.total_servers(), 30 * 3);
/// // Near-regular: every switch uses r or r-1 network ports.
/// assert!(topo.graph().min_degree() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct JellyfishBuilder {
    switches: usize,
    ports: usize,
    network_degree: usize,
    seed: u64,
    max_attempts: usize,
}

impl JellyfishBuilder {
    /// Creates a builder for `RRG(switches, ports, network_degree)`.
    pub fn new(switches: usize, ports: usize, network_degree: usize) -> Self {
        JellyfishBuilder { switches, ports, network_degree, seed: 0xD1CE, max_attempts: 50 }
    }

    /// Sets the RNG seed (construction is deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many full restarts are allowed before giving up (rarely
    /// needed; the swap-completion step almost always succeeds first try).
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Validates the parameters without building.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.switches == 0 {
            return Err(TopologyError::InvalidParameters("need at least one switch".into()));
        }
        if self.network_degree > self.ports {
            return Err(TopologyError::InvalidParameters(format!(
                "network degree {} exceeds port count {}",
                self.network_degree, self.ports
            )));
        }
        if self.network_degree >= self.switches {
            return Err(TopologyError::Infeasible(format!(
                "network degree {} requires at least {} switches (simple graph), have {}",
                self.network_degree,
                self.network_degree + 1,
                self.switches
            )));
        }
        if self.switches > 1 && self.network_degree == 0 {
            return Err(TopologyError::Infeasible(
                "network degree 0 with more than one switch yields a disconnected network".into(),
            ));
        }
        Ok(())
    }

    /// Builds the topology.
    ///
    /// The result is connected and near-regular: every switch has network
    /// degree `r` except possibly one switch with degree `r - 1` (when
    /// `N * r` is odd, one port cannot be matched, exactly as the paper
    /// describes).
    pub fn build(&self) -> Result<Topology, TopologyError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        for attempt in 0..self.max_attempts {
            let graph = self.try_build(&mut rng);
            match graph {
                Some(g) if g.is_connected() || self.switches == 1 => {
                    let servers = self.ports - self.network_degree;
                    let topo = Topology::homogeneous(g, self.ports, servers).with_name(format!(
                        "jellyfish(N={},k={},r={})",
                        self.switches, self.ports, self.network_degree
                    ));
                    debug_assert!(topo.check_invariants().is_ok());
                    return Ok(topo);
                }
                _ => {
                    // Disconnected or stuck: reseed from the attempt counter and retry.
                    rng = StdRng::seed_from_u64(self.seed.wrapping_add(attempt as u64 + 1));
                }
            }
        }
        Err(TopologyError::ConstructionFailed(format!(
            "could not build a connected RRG(N={}, k={}, r={}) in {} attempts",
            self.switches, self.ports, self.network_degree, self.max_attempts
        )))
    }

    /// One construction attempt: random pairing followed by swap completion.
    fn try_build(&self, rng: &mut StdRng) -> Option<Graph> {
        let n = self.switches;
        let r = self.network_degree;
        let mut graph = Graph::new(n);
        if n == 1 || r == 0 {
            return Some(graph);
        }

        // Phase 1: random pairing. Keep a pool of switches with free ports and
        // repeatedly try to connect two distinct, non-adjacent members.
        let mut free: Vec<usize> = (0..n).collect();
        let has_free = |g: &Graph, v: usize| g.degree(v) < r;
        let mut stall = 0usize;
        // The pairing phase is done when fewer than two switches have free
        // ports, or when all remaining free-port switches form a clique among
        // themselves (no further simple edge can be added).
        while free.len() >= 2 {
            let i = rng.gen_range(0..free.len());
            let mut j = rng.gen_range(0..free.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (free[i], free[j]);
            if !graph.has_edge(u, v) {
                graph.add_edge(u, v);
                stall = 0;
                free.retain(|&x| has_free(&graph, x));
            } else {
                stall += 1;
                // If we keep hitting already-connected pairs, check whether the
                // free pool is saturated (every pair already adjacent).
                if stall > 8 * free.len() * free.len() + 64 {
                    if Self::pool_saturated(&graph, &free) {
                        break;
                    }
                    stall = 0;
                }
            }
        }

        // Phase 2: swap completion. Any switch with >= 2 free ports steals a
        // random existing link (x, y) that touches neither of its neighbors.
        let mut progress = true;
        while progress {
            progress = false;
            for p in 0..n {
                while r - graph.degree(p) >= 2 {
                    if !Self::splice_into_random_edge(&mut graph, p, rng) {
                        break;
                    }
                    progress = true;
                }
            }
        }
        // Phase 3: pair up switches left with exactly one free port each
        // (possible when the pairing phase saturates with mutually adjacent
        // leftovers). After this at most one port remains unmatched.
        let targets = vec![r; n];
        Self::finish_single_ports(&mut graph, &targets, rng);
        Some(graph)
    }

    /// Resolves switches that each have exactly one free port left. Two such
    /// switches are either connected directly (if not yet adjacent) or, when
    /// all leftovers are pairwise adjacent, incorporated by a double swap:
    /// remove an existing link (x, y) and add (u, x) and (v, y).
    fn finish_single_ports(graph: &mut Graph, targets: &[usize], rng: &mut StdRng) {
        loop {
            let singles: Vec<usize> =
                (0..graph.num_nodes()).filter(|&v| targets[v] > graph.degree(v)).collect();
            if singles.len() < 2 {
                return;
            }
            // Try a direct connection between any two deficient switches.
            let mut connected = false;
            'search: for (i, &u) in singles.iter().enumerate() {
                for &v in &singles[i + 1..] {
                    if !graph.has_edge(u, v) {
                        graph.add_edge(u, v);
                        connected = true;
                        break 'search;
                    }
                }
            }
            if connected {
                continue;
            }
            // All deficient switches are pairwise adjacent: double swap.
            let (u, v) = (singles[0], singles[1]);
            let m = graph.num_edges();
            let mut swapped = false;
            let start = if m == 0 { 0 } else { rng.gen_range(0..m) };
            for off in 0..m {
                let e = graph.edge_at((start + off) % m);
                let (x, y) = (e.a, e.b);
                if x == u || x == v || y == u || y == v {
                    continue;
                }
                // Orient the swap so both new links are simple.
                let (xu, yv) = if !graph.has_edge(u, x) && !graph.has_edge(v, y) {
                    (x, y)
                } else if !graph.has_edge(u, y) && !graph.has_edge(v, x) {
                    (y, x)
                } else {
                    continue;
                };
                graph.remove_edge(x, y);
                graph.add_edge(u, xu);
                graph.add_edge(v, yv);
                swapped = true;
                break;
            }
            if !swapped {
                return; // nothing more can be done; leave the deficit
            }
        }
    }

    /// Returns true when every pair of switches in `pool` is already adjacent.
    fn pool_saturated(graph: &Graph, pool: &[usize]) -> bool {
        for (idx, &u) in pool.iter().enumerate() {
            for &v in &pool[idx + 1..] {
                if !graph.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Removes a uniform-random link `(x, y)` with `x, y` both different from
    /// `p` and not already adjacent to `p`, then adds `(p, x)` and `(p, y)`.
    /// Returns `false` if no such link exists.
    fn splice_into_random_edge(graph: &mut Graph, p: usize, rng: &mut StdRng) -> bool {
        let m = graph.num_edges();
        if m == 0 {
            return false;
        }
        // Rejection-sample a usable edge; fall back to a scan if unlucky.
        for _ in 0..64 {
            let e = graph.edge_at(rng.gen_range(0..m));
            if Self::splice_ok(graph, p, e.a, e.b) {
                graph.remove_edge(e.a, e.b);
                graph.add_edge(p, e.a);
                graph.add_edge(p, e.b);
                return true;
            }
        }
        let candidates: Vec<_> =
            graph.edges().filter(|e| Self::splice_ok(graph, p, e.a, e.b)).collect();
        if candidates.is_empty() {
            return false;
        }
        let e = candidates[rng.gen_range(0..candidates.len())];
        graph.remove_edge(e.a, e.b);
        graph.add_edge(p, e.a);
        graph.add_edge(p, e.b);
        true
    }

    fn splice_ok(graph: &Graph, p: usize, x: usize, y: usize) -> bool {
        x != p && y != p && !graph.has_edge(p, x) && !graph.has_edge(p, y)
    }
}

/// Builds a heterogeneous Jellyfish topology: each switch `i` has
/// `ports[i]` ports of which `network_degree[i]` are used for the network.
///
/// This supports the paper's heterogeneous-expansion discussion (§4.2): newer
/// switches with higher port counts can be mixed freely into the random
/// graph. The construction is the same random pairing + swap completion, with
/// per-switch degree targets.
pub fn build_heterogeneous(
    ports: &[usize],
    network_degree: &[usize],
    seed: u64,
) -> Result<Topology, TopologyError> {
    if ports.len() != network_degree.len() {
        return Err(TopologyError::InvalidParameters(
            "ports and network_degree must have the same length".into(),
        ));
    }
    let n = ports.len();
    if n == 0 {
        return Err(TopologyError::InvalidParameters("need at least one switch".into()));
    }
    for i in 0..n {
        if network_degree[i] > ports[i] {
            return Err(TopologyError::InvalidParameters(format!(
                "switch {i}: network degree {} exceeds ports {}",
                network_degree[i], ports[i]
            )));
        }
        if network_degree[i] >= n && n > 1 {
            return Err(TopologyError::Infeasible(format!(
                "switch {i}: network degree {} too large for {} switches",
                network_degree[i], n
            )));
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..50u64 {
        let mut graph = Graph::new(n);
        let mut free: Vec<usize> = (0..n).filter(|&i| network_degree[i] > 0).collect();
        let mut stall = 0usize;
        while free.len() >= 2 {
            let i = rng.gen_range(0..free.len());
            let mut j = rng.gen_range(0..free.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (free[i], free[j]);
            if !graph.has_edge(u, v) {
                graph.add_edge(u, v);
                stall = 0;
                free.retain(|&x| graph.degree(x) < network_degree[x]);
            } else {
                stall += 1;
                if stall > 8 * free.len() * free.len() + 64 {
                    let saturated = free
                        .iter()
                        .enumerate()
                        .all(|(idx, &u)| free[idx + 1..].iter().all(|&v| graph.has_edge(u, v)));
                    if saturated {
                        break;
                    }
                    stall = 0;
                }
            }
        }
        // Swap completion with per-switch targets.
        let mut progress = true;
        while progress {
            progress = false;
            for (p, &target) in network_degree.iter().enumerate().take(n) {
                while target.saturating_sub(graph.degree(p)) >= 2 {
                    if !JellyfishBuilder::splice_into_random_edge(&mut graph, p, &mut rng) {
                        break;
                    }
                    progress = true;
                }
            }
        }
        JellyfishBuilder::finish_single_ports(&mut graph, network_degree, &mut rng);
        if graph.is_connected() || n == 1 {
            let servers: Vec<usize> = (0..n).map(|i| ports[i] - network_degree[i]).collect();
            let topo = Topology::from_parts(
                graph,
                ports.to_vec(),
                servers,
                vec![SwitchKind::TopOfRack; n],
                "jellyfish-heterogeneous",
            );
            debug_assert!(topo.check_invariants().is_ok());
            return Ok(topo);
        }
        rng = StdRng::seed_from_u64(seed.wrapping_add(attempt + 1));
    }
    Err(TopologyError::ConstructionFailed(
        "could not build a connected heterogeneous Jellyfish topology".into(),
    ))
}

/// A deliberately naive construction used only as an ablation baseline: keep
/// retrying uniformly random port matchings until one happens to be simple
/// and connected. Exponentially slower than the swap-completion procedure at
/// moderate degrees; exposed so the ablation bench can quantify that.
pub fn build_naive_retry(
    switches: usize,
    ports: usize,
    network_degree: usize,
    seed: u64,
    max_tries: usize,
) -> Result<Topology, TopologyError> {
    let builder = JellyfishBuilder::new(switches, ports, network_degree);
    builder.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = switches;
    let r = network_degree;
    for _ in 0..max_tries {
        // Create r "stubs" per switch and shuffle-pair them (configuration model).
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, r)).collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut graph = Graph::new(n);
        let mut ok = true;
        for pair in stubs.chunks(2) {
            if pair.len() < 2 {
                break; // odd total degree: one stub left over, allowed
            }
            let (u, v) = (pair[0], pair[1]);
            if u == v || !graph.add_edge(u, v) {
                ok = false;
                break;
            }
        }
        if ok && graph.is_connected() {
            let topo = Topology::homogeneous(graph, ports, ports - r).with_name("jellyfish-naive");
            return Ok(topo);
        }
    }
    Err(TopologyError::ConstructionFailed(format!(
        "naive configuration-model sampling failed within {max_tries} tries"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_regular_connected_graph() {
        let topo = JellyfishBuilder::new(50, 10, 6).seed(1).build().unwrap();
        let g = topo.graph();
        assert!(g.is_connected());
        assert_eq!(g.num_nodes(), 50);
        // Even N*r: fully regular.
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6, "switch {v} not regular");
        }
        assert_eq!(topo.total_servers(), 50 * 4);
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn odd_degree_sum_leaves_at_most_one_port_unmatched() {
        // N=25, r=5 => N*r = 125 odd: exactly one switch ends with degree 4.
        let topo = JellyfishBuilder::new(25, 8, 5).seed(3).build().unwrap();
        let g = topo.graph();
        let deficient: Vec<_> = g.nodes().filter(|&v| g.degree(v) < 5).collect();
        assert!(deficient.len() <= 1, "more than one unmatched port: {deficient:?}");
        for &v in &deficient {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = JellyfishBuilder::new(40, 12, 8).seed(99).build().unwrap();
        let b = JellyfishBuilder::new(40, 12, 8).seed(99).build().unwrap();
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = JellyfishBuilder::new(40, 12, 8).seed(1).build().unwrap();
        let b = JellyfishBuilder::new(40, 12, 8).seed(2).build().unwrap();
        let ea: std::collections::BTreeSet<_> = a.graph().edges().collect();
        let eb: std::collections::BTreeSet<_> = b.graph().edges().collect();
        assert_ne!(ea, eb, "two seeds produced the same random graph");
    }

    #[test]
    fn paper_scale_instance_686_servers() {
        // Same equipment as a k=14 fat-tree: 245 switches of 14 ports.
        // Attaching ~686 servers means ~2.8 servers per switch; the paper uses
        // an equal split r=11, giving 245*3 = 735 capacity. Here we check the
        // canonical RRG(245, 14, 11) builds cleanly and is connected.
        let topo = JellyfishBuilder::new(245, 14, 11).seed(2012).build().unwrap();
        assert!(topo.graph().is_connected());
        assert_eq!(topo.total_servers(), 245 * 3);
        assert!(topo.graph().min_degree() >= 10);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(JellyfishBuilder::new(0, 4, 2).build().is_err());
        assert!(JellyfishBuilder::new(10, 4, 5).build().is_err());
        assert!(JellyfishBuilder::new(4, 8, 5).build().is_err(), "r >= N infeasible");
        assert!(JellyfishBuilder::new(10, 4, 0).build().is_err());
    }

    #[test]
    fn single_switch_is_allowed() {
        let topo = JellyfishBuilder::new(1, 48, 0).build().unwrap();
        assert_eq!(topo.num_switches(), 1);
        assert_eq!(topo.total_servers(), 48);
    }

    #[test]
    fn complete_graph_corner_case() {
        // r = N-1 forces the complete graph.
        let topo = JellyfishBuilder::new(6, 8, 5).seed(7).build().unwrap();
        let g = topo.graph();
        assert_eq!(g.num_edges(), 6 * 5 / 2);
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn heterogeneous_construction_mixed_port_counts() {
        // 20 old 24-port switches (r=10) mixed with 5 new 48-port switches (r=14).
        let mut ports = vec![24; 20];
        ports.extend(vec![48; 5]);
        let mut degree = vec![10usize; 20];
        degree.extend(vec![14usize; 5]);
        let topo = build_heterogeneous(&ports, &degree, 5).unwrap();
        assert!(topo.graph().is_connected());
        for i in 0..20 {
            assert!(topo.graph().degree(i) <= 10);
            assert_eq!(topo.servers(i), 24 - 10);
        }
        for i in 20..25 {
            assert!(topo.graph().degree(i) <= 14);
            assert_eq!(topo.servers(i), 48 - 14);
        }
        assert!(topo.check_invariants().is_ok());
    }

    #[test]
    fn heterogeneous_rejects_mismatched_lengths() {
        assert!(build_heterogeneous(&[8, 8], &[4], 0).is_err());
        assert!(build_heterogeneous(&[8], &[9], 0).is_err());
    }

    #[test]
    fn naive_retry_small_instance() {
        let topo = build_naive_retry(12, 6, 3, 11, 20_000).unwrap();
        assert!(topo.graph().is_connected());
        for v in topo.graph().nodes() {
            assert_eq!(topo.graph().degree(v), 3);
        }
    }

    #[test]
    fn near_regularity_across_many_seeds() {
        for seed in 0..12 {
            let topo = JellyfishBuilder::new(30, 10, 7).seed(seed).build().unwrap();
            let g = topo.graph();
            let deficient = g.nodes().filter(|&v| g.degree(v) < 7).count();
            assert!(deficient <= 1, "seed {seed}: {deficient} deficient switches");
            assert!(g.max_degree() <= 7);
            assert!(g.is_connected());
        }
    }
}
